// The exhaustive stateless model checker (src/mc): the subsystem that turns
// "for every asynchronous schedule" from a sampled claim into a machine-
// checked one on small instances.
//
// Pins, per the PR's acceptance criteria:
//  1. Exhaustive verification of KnownKFull and KnownKLogMem at small (n, k)
//     on ring, Euler-tree and Eulerian-graph topologies, with exact
//     schedule/state counts that are byte-identical at any worker count
//     (the frontier-sharded decomposition is part of the options, never of
//     the parallelism), plus a literal full-enumeration count on the
//     smallest instance — a number derived from nothing but the simulator's
//     branching structure, so any semantic drift moves it.
//  2. Deterministic (randomness-free) rediscovery of the non-FIFO
//     double-booked-base-node violation, with the emitted counterexample
//     replaying through the existing explore::replay_trace path to the same
//     failure and digest.
//  3. Pruned == unpruned verdict equality on grids where full enumeration
//     is feasible, for every pruning combination (dedup × sleep sets × DPOR
//     × symmetry), plus shared-visited-set runs whose verdicts and counts
//     are byte-identical at any worker count.
//
// Plus the foundation the dedup pruning rests on: ExecutionState::
// config_digest() must hash the configuration and not the history
// (commuting independent actions converge; the event log does not).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "config/generators.h"
#include "core/runner.h"
#include "embed/topology.h"
#include "explore/fuzz.h"
#include "mc/model_check.h"
#include "util/rng.h"

namespace udring::mc {
namespace {

[[nodiscard]] CheckRequest ring_request(core::Algorithm algorithm,
                                        std::size_t n,
                                        std::vector<std::size_t> homes) {
  CheckRequest request;
  request.algorithm = algorithm;
  request.node_count = n;
  request.homes = std::move(homes);
  return request;
}

void expect_same_report(const ModelCheckReport& a, const ModelCheckReport& b,
                        const char* what) {
  EXPECT_EQ(a.ok, b.ok) << what;
  EXPECT_EQ(a.complete, b.complete) << what;
  EXPECT_EQ(a.verdict, b.verdict) << what;
  EXPECT_EQ(a.stats.schedules, b.stats.schedules) << what;
  EXPECT_EQ(a.stats.states_expanded, b.stats.states_expanded) << what;
  EXPECT_EQ(a.stats.states_deduped, b.stats.states_deduped) << what;
  EXPECT_EQ(a.stats.sleep_pruned, b.stats.sleep_pruned) << what;
  EXPECT_EQ(a.stats.dpor_pruned, b.stats.dpor_pruned) << what;
  EXPECT_EQ(a.stats.replays, b.stats.replays) << what;
  EXPECT_EQ(a.stats.total_actions, b.stats.total_actions) << what;
  EXPECT_EQ(a.stats.max_depth, b.stats.max_depth) << what;
  EXPECT_EQ(a.stats.shards, b.stats.shards) << what;
  EXPECT_EQ(a.digest(), b.digest()) << what;
}

// ---- config_digest: state, not history --------------------------------------

TEST(ConfigDigest, CommutingIndependentActionsConverge) {
  // Two agents with disjoint footprints (homes 0 and 4 on an 8-ring): their
  // first actions commute. Both interleavings must reach the SAME
  // configuration digest while the event-log digests (history) differ.
  core::RunSpec spec;
  spec.node_count = 8;
  spec.homes = {0, 4};
  spec.sim_options.record_events = true;
  auto ab = core::make_simulator(core::Algorithm::KnownKFull, spec);
  auto ba = core::make_simulator(core::Algorithm::KnownKFull, spec);
  ASSERT_TRUE(ab->step_agent(0));
  ASSERT_TRUE(ab->step_agent(1));
  ASSERT_TRUE(ba->step_agent(1));
  ASSERT_TRUE(ba->step_agent(0));
  EXPECT_EQ(ab->config_digest(), ba->config_digest());
  EXPECT_NE(ab->log().digest(), ba->log().digest())
      << "event logs record history and must distinguish the orders";
}

TEST(ConfigDigest, DistinguishesSuccessiveConfigurations) {
  core::RunSpec spec;
  spec.node_count = 8;
  spec.homes = {0, 4};
  auto sim = core::make_simulator(core::Algorithm::KnownKFull, spec);
  const std::uint64_t initial = sim->config_digest();
  ASSERT_TRUE(sim->step_agent(0));
  const std::uint64_t after = sim->config_digest();
  EXPECT_NE(initial, after);
  // A fresh state on the same instance digests identically to the first.
  auto again = core::make_simulator(core::Algorithm::KnownKFull, spec);
  EXPECT_EQ(again->config_digest(), initial);
}

// ---- 1. exhaustive verification, counts stable across workers ---------------

TEST(Exhaustive, KnownKFullSmallestInstanceFullEnumerationCount) {
  // n = 6, k = 2, every pruning off: the walk IS the full schedule tree.
  // 2704 complete schedules (6989 tree nodes) is a structural constant of
  // the simulator's atomic-action semantics for homes {0, 3} — a number
  // independent of any hash function, so any drift in the action semantics,
  // the enabled-set rule, or the choice encoding moves it.
  McOptions options;
  options.dedup_states = false;
  options.sleep_sets = false;
  options.dpor = false;
  const ModelCheckReport report =
      check(ring_request(core::Algorithm::KnownKFull, 6, {0, 3}), options);
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.verdict, "verified");
  EXPECT_EQ(report.stats.schedules, 2704u);
  EXPECT_EQ(report.stats.states_expanded, 6989u);
  EXPECT_EQ(report.stats.states_deduped, 0u);
  EXPECT_EQ(report.stats.sleep_pruned, 0u);
  EXPECT_EQ(report.stats.dpor_pruned, 0u);
}

class ExhaustiveAlgorithms
    : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(ExhaustiveAlgorithms, VerifiedOnSmallRingAtAnyWorkerCount) {
  Rng rng(7);
  CheckRequest request = ring_request(
      GetParam(), 8, exp::draw_homes(exp::ConfigFamily::RandomAny, 8, 3, 1, rng));
  McOptions options;
  options.frontier_target = 6;  // sharded decomposition: fixed by options
  options.workers = 1;
  const ModelCheckReport serial = check(request, options);
  EXPECT_TRUE(serial.ok) << serial.failure_reason;
  EXPECT_TRUE(serial.complete);
  EXPECT_GT(serial.stats.schedules, 0u);
  EXPECT_GT(serial.stats.states_expanded, 0u);
  EXPECT_GT(serial.stats.shards, 1u);
  for (const std::size_t workers : {2u, 4u}) {
    McOptions sharded = options;
    sharded.workers = workers;
    expect_same_report(serial, check(request, sharded),
                       "worker count changed the report");
  }
}

TEST_P(ExhaustiveAlgorithms, VerifiedNativelyOnEulerTreeAndEulerianGraph) {
  // The §5 embeddings, checked exhaustively on their native virtual rings.
  Rng rng(19);
  for (const embed::RandomNetworkKind kind :
       {embed::RandomNetworkKind::Tree, embed::RandomNetworkKind::Graph}) {
    CheckRequest request;
    request.algorithm = GetParam();
    request.topology = embed::random_network_topology(kind, 5, rng);
    request.node_count = request.topology.size();
    request.homes = embed::draw_virtual_homes(request.topology, 2, rng);
    const ModelCheckReport report = check(request);
    EXPECT_TRUE(report.ok) << report.failure_reason;
    EXPECT_TRUE(report.complete);
    EXPECT_GT(report.stats.states_expanded, 0u);
  }
}

TEST_P(ExhaustiveAlgorithms, VerifiedAtIssueScaleWithPruning) {
  // The tentpole's stated grid corner: n = 12 (full) / 10 (logmem), k = 4 —
  // feasible only because dedup + sleep sets cut the tree to its state DAG.
  const bool logmem = GetParam() == core::Algorithm::KnownKLogMem;
  const std::size_t n = logmem ? 10 : 12;
  const ModelCheckReport report =
      check(ring_request(GetParam(), n, gen::uniform_homes(n, 4)));
  EXPECT_TRUE(report.ok) << report.failure_reason;
  EXPECT_TRUE(report.complete);
  EXPECT_GT(report.stats.states_deduped, 0u);
  EXPECT_GT(report.stats.sleep_pruned, 0u);
  EXPECT_GT(report.stats.dpor_pruned, 0u);

  // DPOR must actually shrink the walk relative to sleep sets + dedup alone
  // (the tentpole's point), not merely keep the verdict.
  McOptions no_dpor;
  no_dpor.dpor = false;
  const ModelCheckReport baseline =
      check(ring_request(GetParam(), n, gen::uniform_homes(n, 4)), no_dpor);
  EXPECT_TRUE(baseline.ok);
  EXPECT_LT(report.stats.states_expanded, baseline.stats.states_expanded);
}

INSTANTIATE_TEST_SUITE_P(SmallGrids, ExhaustiveAlgorithms,
                         ::testing::Values(core::Algorithm::KnownKFull,
                                           core::Algorithm::KnownKLogMem),
                         [](const auto& info) {
                           std::string name(core::to_string(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---- 2. deterministic rediscovery of the non-FIFO violation -----------------

[[nodiscard]] CheckRequest stress_fault_request(core::Algorithm algorithm) {
  CheckRequest request = ring_request(algorithm, gen::kLogmemStressNodes,
                                      gen::logmem_stress_homes());
  request.fault_non_fifo = true;
  request.fault_min_phase = 1;  // deployment-phase window (see SimOptions)
  return request;
}

TEST(FaultRediscovery, FindsDoubleBookedBaseNodeWithoutRandomness) {
  // PR 2's fuzzer needed randomized adversarial search to surface this; the
  // checker's plain DFS order finds it with zero random bits.
  const ModelCheckReport report =
      check(stress_fault_request(core::Algorithm::KnownKLogMemStrict));
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.verdict, "violation");
  EXPECT_EQ(report.failure_reason, "goal: two agents share node 0");
  ASSERT_TRUE(report.counterexample.has_value());

  // The counterexample is a first-class trace: the existing replay path
  // reproduces the exact failure and digest (udring_fuzz --replay accepts it).
  const explore::ScheduleTrace& trace = *report.counterexample;
  EXPECT_EQ(trace.note, report.failure_reason);
  const explore::ReplayOutcome replayed = explore::replay_trace(trace);
  EXPECT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.reason, report.failure_reason);
  EXPECT_EQ(replayed.digest, trace.expected_digest);

  // Determinism: a second check is byte-identical, counterexample included.
  const ModelCheckReport again =
      check(stress_fault_request(core::Algorithm::KnownKLogMemStrict));
  expect_same_report(report, again, "rediscovery must be deterministic");
  ASSERT_TRUE(again.counterexample.has_value());
  EXPECT_EQ(again.counterexample->choices, trace.choices);
}

TEST(FaultRediscovery, HardenedVariantSurvivesTheSameSearchBudget) {
  // Same instance, same fault, hardened deployment: the checker must NOT
  // find a violation within a budget far larger than the strict variant
  // needed (the strict counterexample is ~150 actions deep).
  CheckRequest request = stress_fault_request(core::Algorithm::KnownKLogMem);
  McOptions options;
  options.budget_actions = 200000;
  const ModelCheckReport report = check(request, options);
  EXPECT_TRUE(report.ok) << report.failure_reason;
}

TEST(FaultRediscovery, VerdictIdenticalUnderEveryPruningCombination) {
  for (const bool dedup : {false, true}) {
    for (const bool sleep : {false, true}) {
      for (const bool dpor : {false, true}) {
        McOptions options;
        options.dedup_states = dedup;
        options.sleep_sets = sleep;
        options.dpor = dpor;
        const ModelCheckReport report =
            check(stress_fault_request(core::Algorithm::KnownKLogMemStrict),
                  options);
        EXPECT_FALSE(report.ok);
        EXPECT_EQ(report.failure_reason, "goal: two agents share node 0")
            << "dedup=" << dedup << " sleep=" << sleep << " dpor=" << dpor;
      }
    }
  }
}

// ---- 3. pruned == unpruned verdicts on fully enumerable grids ---------------

TEST(PruningSoundness, VerdictEqualOnFullyEnumerableGrid) {
  struct Cell {
    core::Algorithm algorithm;
    std::size_t n;
  };
  const std::vector<Cell> grid = {
      {core::Algorithm::KnownKFull, 5},
      {core::Algorithm::KnownKFull, 6},
      {core::Algorithm::KnownKFull, 7},
      {core::Algorithm::KnownKLogMem, 5},
      {core::Algorithm::KnownKLogMem, 6},
  };
  Rng rng(31);
  for (const Cell& cell : grid) {
    const CheckRequest request = ring_request(
        cell.algorithm, cell.n,
        exp::draw_homes(exp::ConfigFamily::RandomAny, cell.n, 2, 1, rng));
    ModelCheckReport reference;  // fully unpruned = ground truth
    bool have_reference = false;
    for (const bool dedup : {false, true}) {
      for (const bool sleep : {false, true}) {
        for (const bool dpor : {false, true}) {
          // Symmetry only acts through the dedup key; skip the redundant
          // dedup=false duplicate to keep the grid's runtime in check.
          for (const bool symmetry :
               dedup ? std::vector<bool>{false, true}
                     : std::vector<bool>{false}) {
            McOptions options;
            options.dedup_states = dedup;
            options.sleep_sets = sleep;
            options.dpor = dpor;
            options.symmetry = symmetry;
            const ModelCheckReport report = check(request, options);
            EXPECT_TRUE(report.complete)
                << core::to_string(cell.algorithm) << " n=" << cell.n;
            if (!have_reference) {
              reference = report;
              have_reference = true;
              EXPECT_GT(report.stats.schedules, 0u);
            }
            EXPECT_EQ(report.ok, reference.ok)
                << core::to_string(cell.algorithm) << " n=" << cell.n
                << " dedup=" << dedup << " sleep=" << sleep
                << " dpor=" << dpor << " symmetry=" << symmetry;
            EXPECT_EQ(report.verdict, reference.verdict);
            // Pruning may only shrink the walk, never grow it.
            EXPECT_LE(report.stats.schedules, reference.stats.schedules);
            EXPECT_LE(report.stats.states_expanded,
                      reference.stats.states_expanded);
          }
        }
      }
    }
  }
}

// ---- shared visited set -----------------------------------------------------

TEST(SharedVisited, VerdictAndCountsIdenticalAtAnyWorkerCount) {
  // The closure-walk contract (model_check.h): with the lock-free shared
  // visited set, every count is a function of the claimed closure, so the
  // full report — not just the verdict — is byte-identical whether shards
  // race on 1, 2 or 4 threads.
  const CheckRequest request =
      ring_request(core::Algorithm::KnownKFull, 8, {0, 3, 6});
  McOptions options;
  options.shared_visited = true;
  options.frontier_target = 6;
  options.workers = 1;
  const ModelCheckReport serial = check(request, options);
  EXPECT_TRUE(serial.ok) << serial.failure_reason;
  EXPECT_TRUE(serial.complete);
  EXPECT_GT(serial.stats.states_deduped, 0u);
  for (const std::size_t workers : {2u, 4u}) {
    McOptions racing = options;
    racing.workers = workers;
    expect_same_report(serial, check(request, racing),
                       "worker count changed the shared-visited report");
  }
  // And the verdict agrees with the deterministic tree walk (counts differ:
  // the closure visits each state once, the tree walk re-proves per sleep
  // mask).
  const ModelCheckReport tree = check(request);
  EXPECT_EQ(serial.ok, tree.ok);
  EXPECT_EQ(serial.verdict, tree.verdict);
}

TEST(SharedVisited, ViolationFallsBackToTheDeterministicWalk) {
  // Which racing shard trips a violation first is nondeterministic, so
  // check() re-runs without the shared set: the report — counterexample
  // included — must be byte-identical to a plain check's.
  McOptions options;
  options.shared_visited = true;
  options.frontier_target = 6;
  options.workers = 4;
  const ModelCheckReport shared =
      check(stress_fault_request(core::Algorithm::KnownKLogMemStrict), options);
  McOptions plain_options = options;  // fallback = same options, no shared set
  plain_options.shared_visited = false;
  const ModelCheckReport plain = check(
      stress_fault_request(core::Algorithm::KnownKLogMemStrict), plain_options);
  ASSERT_FALSE(shared.ok);
  expect_same_report(plain, shared, "violation fallback must be exact");
  ASSERT_TRUE(shared.counterexample.has_value());
  EXPECT_EQ(shared.counterexample->choices, plain.counterexample->choices);
}

TEST(SharedVisited, UndersizedTableDegradesToBudgetExhaustion) {
  // A full table may not silently drop states: the run must downgrade to
  // "budget-exhausted" (incomplete, not wrong).
  McOptions options;
  options.shared_visited = true;
  options.shared_visited_capacity = 64;  // far below this instance's closure
  const ModelCheckReport report =
      check(ring_request(core::Algorithm::KnownKFull, 8, {0, 3, 6}), options);
  EXPECT_TRUE(report.ok);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.verdict, "budget-exhausted");
}

TEST(FaultRediscovery, CapSensitiveCounterexampleReplaysStandAlone) {
  // A violation found under a custom per-schedule action cap must stay
  // replayable through the default replay path: the trace carries its
  // max-actions, so `udring_fuzz --replay` needs no extra flags.
  CheckRequest request =
      ring_request(core::Algorithm::KnownKFull, 8, {0, 2, 5});
  request.max_actions = 20;  // far below this instance's ~50-action runs
  const ModelCheckReport report = check(request);
  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.failure_reason,
            "action limit reached (livelock or broken algorithm)");
  ASSERT_TRUE(report.counterexample.has_value());
  EXPECT_EQ(report.counterexample->max_actions, 20u);

  // Round-trip through the text format, then replay with NO explicit cap.
  const explore::ScheduleTrace reparsed =
      explore::ScheduleTrace::parse(report.counterexample->to_text());
  EXPECT_EQ(reparsed.max_actions, 20u);
  const explore::ReplayOutcome replayed = explore::replay_trace(reparsed);
  EXPECT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.reason, report.failure_reason);
  EXPECT_EQ(replayed.digest, report.counterexample->expected_digest);
}

// ---- budget + report plumbing -----------------------------------------------

TEST(Budget, ExhaustionIsReportedNotMistakenForAVerdict) {
  McOptions options;
  options.budget_actions = 50;  // far below the tree size
  const ModelCheckReport report =
      check(ring_request(core::Algorithm::KnownKFull, 8, {0, 2, 5}), options);
  EXPECT_TRUE(report.ok);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.verdict, "budget-exhausted");
  EXPECT_FALSE(report.counterexample.has_value());
}

TEST(Report, RejectsEmptyInstance) {
  EXPECT_THROW((void)check(ring_request(core::Algorithm::KnownKFull, 6, {})),
               std::invalid_argument);
}

// ---- campaign integration ---------------------------------------------------

TEST(GridIntegration, ChecksTheSameInstancesTheCampaignSamples) {
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull};
  grid.node_counts = {6, 8};
  grid.agent_counts = {2};
  grid.seeds = 2;
  const GridReport report = check_grid(grid);
  ASSERT_EQ(report.cells.size(), 4u);
  EXPECT_TRUE(report.all_verified());
  EXPECT_EQ(report.violations, 0u);

  // Each cell checked exactly the configuration the campaign's substream
  // contract derives — "verified over all schedules" sits beside sampled
  // cells as evidence about the SAME instances.
  const std::vector<exp::Scenario> scenarios = exp::expand(grid);
  ASSERT_EQ(scenarios.size(), report.cells.size());
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    EXPECT_EQ(report.cells[i].homes,
              exp::scenario_homes(grid, scenarios[i]));
    EXPECT_TRUE(report.cells[i].report.complete);
  }

  EXPECT_EQ(report.summary_table().rows(), report.cells.size());
  EXPECT_NE(report.summary().find("verified over all schedules"),
            std::string::npos);
  // Grid checking is deterministic end to end.
  EXPECT_EQ(report.digest(), check_grid(grid).digest());
}

TEST(GridIntegration, CellVerdictMatchesDirectCheck) {
  // A grid cell is exactly mc::check on the scenario's drawn instance with
  // the grid's sim options — fault knobs and action caps included. Pin the
  // equivalence on a faulted strict-logmem grid (whatever each drawn
  // instance yields, the cell must match the direct call byte for byte).
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKLogMemStrict};
  grid.instances = {{gen::kLogmemStressNodes, 6}};
  grid.seeds = 2;
  grid.sim_options.fault_non_fifo_links = true;
  grid.sim_options.fault_non_fifo_min_phase = 1;
  McOptions options;
  options.budget_actions = 100000;
  const GridReport report = check_grid(grid, options);
  ASSERT_EQ(report.cells.size(), 2u);
  for (const GridCell& cell : report.cells) {
    CheckRequest request;
    request.algorithm = cell.algorithm;
    request.node_count = cell.node_count;
    request.homes = cell.homes;
    request.fault_non_fifo = true;
    request.fault_min_phase = 1;
    const ModelCheckReport direct = check(request, options);
    EXPECT_EQ(direct.verdict, cell.report.verdict);
    EXPECT_EQ(direct.failure_reason, cell.report.failure_reason);
    EXPECT_EQ(direct.digest(), cell.report.digest());
  }
  EXPECT_EQ(report.violations == 0 && report.budget_exhausted == 0,
            report.all_verified());
}

}  // namespace
}  // namespace udring::mc
