// Unit tests for util/rng.h: determinism and distribution sanity of the
// seeded generator every randomized component depends on.

#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace udring {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (const std::uint64_t bound :
       {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3}, std::uint64_t{10},
        std::uint64_t{1000}, std::uint64_t{1} << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u) << "all four values should appear in 2000 draws";
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(123);
  constexpr std::uint64_t kBuckets = 16;
  constexpr int kDraws = 32000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int count : counts) {
    EXPECT_NEAR(count, expected, expected * 0.15);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(77);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[static_cast<std::size_t>(i)] = i;
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(items.begin(), items.end(), shuffled.begin()))
      << "a 100-element shuffle should essentially never be the identity";
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, SubstreamIgnoresDrawHistory) {
  // The campaign engine's reproducibility contract: substream(i) depends
  // only on the construction seed, never on how much the parent has drawn.
  Rng fresh(42);
  Rng drained(42);
  for (int i = 0; i < 1000; ++i) (void)drained();
  Rng a = fresh.substream(7);
  Rng b = drained.substream(7);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, SubstreamsAreDistinctAndDifferFromParent) {
  Rng parent(42);
  Rng s0 = parent.substream(0);
  Rng s1 = parent.substream(1);
  Rng s2 = parent.substream(0xffffffffffffffffULL);
  int collisions = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t p = parent();
    const std::uint64_t v0 = s0(), v1 = s1(), v2 = s2();
    if (v0 == p || v1 == p || v0 == v1 || v0 == v2 || v1 == v2) ++collisions;
  }
  EXPECT_LT(collisions, 3);
}

TEST(Rng, SubstreamAdjacentIndicesDecorrelated) {
  // Counter-style indices (0, 1, 2, …) are the common campaign usage; make
  // sure low-entropy indices still give unrelated streams.
  Rng parent(1);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 512; ++i) {
    firsts.insert(parent.substream(i)());
  }
  EXPECT_EQ(firsts.size(), 512u);
}

TEST(Rng, SubstreamDerivationIsFrozen) {
  // Golden values pin the documented derivation: changing it silently
  // re-seeds every recorded campaign, so it must fail a test instead.
  Rng parent(0);
  EXPECT_EQ(parent.substream(0)(), 0x2cc4f315c1ebc9fdULL);
  EXPECT_EQ(parent.substream(1)(), 0x83fa415a8381d0e3ULL);
  EXPECT_EQ(Rng(Rng::kDefaultSeed).substream(123)(), 0x4acce01ece2868d0ULL);
}

TEST(Rng, SeedAccessorReturnsConstructionSeed) {
  EXPECT_EQ(Rng(42).seed(), 42u);
  EXPECT_EQ(Rng().seed(), Rng::kDefaultSeed);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace udring
