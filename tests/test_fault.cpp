// The structured fault-injection layer (sim/fault.h), end to end.
//
//  - FaultPlan mechanics: normalize/validate/label/fold, and the stride-ring
//    rewiring candidate geometry (φ(n) candidates, ascending coprime strides,
//    the single-cycle revalidation predicate).
//  - The legacy SimOptions non-FIFO bool pair and the structured plan are the
//    same fault: recording under either produces byte-identical traces.
//  - Canonical trace emission: every corpus file re-serializes to its exact
//    bytes, and the fault keys emit in one sorted order regardless of how the
//    trace object was populated.
//  - Replay determinism of faulty executions: fuzz digests under crash and
//    rewiring budgets are worker-count invariant, and every faulty failure
//    sample survives text round-trip with an identical replay.
//  - The acceptance pipeline: a violation reachable only under a crash fault
//    is found by the fuzzer, shrunk by ddmin, replays byte-identically from
//    its serialized form, and is rediscovered by mc::check under the same
//    plan; mc::check_with_faults verdicts agree across every pruning combo.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "explore/fuzz.h"
#include "explore/shrink.h"
#include "explore/trace.h"
#include "mc/model_check.h"
#include "sim/fault.h"

namespace udring {
namespace {

// ---- FaultPlan mechanics ----------------------------------------------------

TEST(FaultPlan, EmptyPlanInjectsNothing) {
  const sim::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.has_events());
  EXPECT_FALSE(plan.has_crashes());
  EXPECT_FALSE(plan.has_rewires());
  EXPECT_EQ(plan.label(), "");
}

TEST(FaultPlan, NormalizeSortsIntoCanonicalFormIdempotently) {
  sim::FaultPlan plan;
  plan.crashes = {{3, 9}, {2, 4}, {1, 4}};
  plan.rewire_at = {7, 2, 5};
  plan.normalize();
  const std::vector<sim::CrashFault> sorted = {{1, 4}, {2, 4}, {3, 9}};
  EXPECT_EQ(plan.crashes, sorted);
  EXPECT_EQ(plan.rewire_at, (std::vector<std::size_t>{2, 5, 7}));
  const sim::FaultPlan once = plan;
  plan.normalize();
  EXPECT_EQ(plan, once);
}

TEST(FaultPlan, ValidateRejectsMalformedPlans) {
  sim::FaultPlan ok;
  ok.crashes = {{0, 2}, {1, 5}};
  ok.rewire_at = {3};
  ok.normalize();
  EXPECT_NO_THROW(ok.validate(8, 2));

  sim::FaultPlan out_of_range = ok;
  out_of_range.crashes.push_back({2, 1});  // agent 2 of a k = 2 instance
  out_of_range.normalize();
  EXPECT_THROW(out_of_range.validate(8, 2), std::invalid_argument);

  sim::FaultPlan duplicate_agent = ok;
  duplicate_agent.crashes.push_back({0, 7});
  duplicate_agent.normalize();
  EXPECT_THROW(duplicate_agent.validate(8, 2), std::invalid_argument);

  sim::FaultPlan duplicate_rewire = ok;
  duplicate_rewire.rewire_at = {3, 3};
  EXPECT_THROW(duplicate_rewire.validate(8, 2), std::invalid_argument);

  sim::FaultPlan tiny_ring;
  tiny_ring.rewire_at = {1};
  EXPECT_THROW(tiny_ring.validate(1, 1), std::invalid_argument);
}

TEST(FaultPlan, LabelListsEventsInCanonicalOrder) {
  sim::FaultPlan plan;
  plan.crashes = {{1, 4}};
  plan.drop_count = 1;
  plan.rewire_at = {2, 5};
  EXPECT_EQ(plan.label(), "crash:1@4+drop:1@0+rewire:2,5");

  sim::FaultPlan window;
  window.non_fifo = true;
  window.non_fifo_min_phase = 2;
  window.non_fifo_until_action = 9;
  window.dup_count = 3;
  window.dup_from_action = 1;
  EXPECT_EQ(window.label(), "nonfifo:p2<9+dup:3@1");
}

TEST(FaultPlan, FoldIntoSeparatesDistinctPlans) {
  sim::FaultPlan a;
  a.crashes = {{0, 3}};
  sim::FaultPlan b;
  b.crashes = {{0, 4}};  // one action later: must digest apart
  std::uint64_t state_a = 0x9e3779b97f4a7c15ULL;
  std::uint64_t state_b = state_a;
  std::uint64_t state_a2 = state_a;
  a.fold_into(state_a);
  b.fold_into(state_b);
  a.fold_into(state_a2);
  EXPECT_NE(state_a, state_b);
  EXPECT_EQ(state_a, state_a2);
}

// ---- rewiring candidate geometry --------------------------------------------

TEST(RewireGeometry, CandidateCountIsEulerPhi) {
  EXPECT_EQ(sim::rewire_candidate_count(0), 0u);
  EXPECT_EQ(sim::rewire_candidate_count(1), 0u);
  EXPECT_EQ(sim::rewire_candidate_count(2), 1u);
  EXPECT_EQ(sim::rewire_candidate_count(7), 6u);   // prime: n - 1
  EXPECT_EQ(sim::rewire_candidate_count(8), 4u);   // {1, 3, 5, 7}
  EXPECT_EQ(sim::rewire_candidate_count(12), 4u);  // {1, 5, 7, 11}
}

TEST(RewireGeometry, CandidateStridesAscendAndStayCoprime) {
  const std::vector<std::size_t> eight = {1, 3, 5, 7};
  for (std::size_t i = 0; i < eight.size(); ++i) {
    EXPECT_EQ(sim::rewire_candidate_stride(8, i), eight[i]);
  }
  const std::vector<std::size_t> twelve = {1, 5, 7, 11};
  for (std::size_t i = 0; i < twelve.size(); ++i) {
    EXPECT_EQ(sim::rewire_candidate_stride(12, i), twelve[i]);
  }
  EXPECT_THROW((void)sim::rewire_candidate_stride(8, 4), std::out_of_range);
  EXPECT_THROW((void)sim::rewire_candidate_stride(1, 0), std::out_of_range);
}

TEST(RewireGeometry, SingleCyclePredicateIsExactlyCoprimality) {
  for (std::size_t n = 2; n <= 16; ++n) {
    for (std::size_t d = 0; d <= n; ++d) {
      const bool expected = d >= 1 && d < n && std::gcd(d, n) == 1;
      EXPECT_EQ(sim::is_single_cycle_stride(n, d), expected)
          << "n=" << n << " stride=" << d;
    }
  }
  // Every listed candidate passes its own revalidation.
  for (std::size_t n = 2; n <= 16; ++n) {
    for (std::size_t i = 0; i < sim::rewire_candidate_count(n); ++i) {
      EXPECT_TRUE(
          sim::is_single_cycle_stride(n, sim::rewire_candidate_stride(n, i)));
    }
  }
}

// ---- legacy knob equivalence ------------------------------------------------

TEST(LegacyFaultKnobs, BoolPairAndStructuredPlanRecordIdentically) {
  // The deprecated SimOptions::fault_non_fifo_links pair is a thin wrapper
  // over FaultPlan::non_fifo; an execution recorded under either spelling
  // must produce the SAME trace, byte for byte — including the legacy
  // serialization (fault-non-fifo / fault-min-phase keys), which pins the
  // pre-fault-layer corpus format.
  explore::RecordRequest legacy;
  legacy.algorithm = core::Algorithm::KnownKLogMemStrict;
  legacy.node_count = 10;
  legacy.homes = {0, 2, 5};
  legacy.kind = explore::ExploreSchedulerKind::FifoStress;
  legacy.seed = 3;
  legacy.fault_non_fifo = true;
  legacy.fault_min_phase = 1;

  explore::RecordRequest structured = legacy;
  structured.fault_non_fifo = false;
  structured.fault_min_phase = 0;
  structured.faults.non_fifo = true;
  structured.faults.non_fifo_min_phase = 1;

  const explore::ScheduleTrace a = explore::record_trace(legacy);
  const explore::ScheduleTrace b = explore::record_trace(structured);
  EXPECT_EQ(a.expected_digest, b.expected_digest);
  EXPECT_EQ(a.choices, b.choices);
  EXPECT_EQ(a.to_text(), b.to_text());
  // Canonical split: the plain relaxation lives in the legacy fields only.
  EXPECT_TRUE(b.fault_non_fifo);
  EXPECT_EQ(b.fault_min_phase, 1u);
  EXPECT_FALSE(b.faults.non_fifo);
  EXPECT_EQ(b.faults.non_fifo_min_phase, 0u);
}

// ---- canonical trace emission -----------------------------------------------

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(UDRING_SCHEDULES_DIR)) {
    if (entry.path().extension() == ".trace") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CanonicalEmission, EveryCorpusTraceReserializesToItsExactBytes) {
  // parse ∘ to_text must be the identity on the corpus: optional keys emit
  // in one canonical sorted order, so no code path that re-writes a trace
  // (shrinking, mc counterexamples, campaign artifacts) can churn the bytes.
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 7u);
  for (const auto& file : files) {
    SCOPED_TRACE(file.filename().string());
    std::ifstream in(file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const explore::ScheduleTrace trace =
        explore::ScheduleTrace::parse(buffer.str());
    EXPECT_EQ(trace.to_text(), buffer.str());
  }
}

TEST(CanonicalEmission, FaultKeysEmitIdenticallyFromAnyInsertionPath) {
  explore::ScheduleTrace base;
  base.algorithm = core::Algorithm::KnownKFull;
  base.node_count = 8;
  base.homes = {0, 4};
  base.choices = {0, 1, 0};
  base.expected_digest = 42;
  base.note = "ok";

  sim::FaultPlan plan;
  plan.non_fifo = true;
  plan.non_fifo_min_phase = 1;
  plan.non_fifo_until_action = 6;
  plan.crashes = {{1, 5}, {0, 2}};  // deliberately unsorted
  plan.rewire_at = {9, 3};
  plan.drop_count = 1;

  // Path 1: the canonical installer.
  explore::ScheduleTrace via_installer = base;
  via_installer.set_fault_plan(plan);

  // Path 2: raw field assignment, legacy pair last, lists left unsorted.
  explore::ScheduleTrace via_fields = base;
  via_fields.faults.rewire_at = {9, 3};
  via_fields.faults.drop_count = 1;
  via_fields.faults.crashes = {{1, 5}, {0, 2}};
  via_fields.faults.non_fifo_until_action = 6;
  via_fields.fault_non_fifo = true;
  via_fields.fault_min_phase = 1;

  EXPECT_EQ(via_installer.to_text(), via_fields.to_text());

  // And the emitted form round-trips to the same merged plan, normalized.
  const explore::ScheduleTrace reparsed =
      explore::ScheduleTrace::parse(via_installer.to_text());
  sim::FaultPlan expected = plan;
  expected.normalize();
  EXPECT_EQ(reparsed.fault_plan(), expected);
  EXPECT_EQ(reparsed.to_text(), via_installer.to_text());
}

// ---- replay determinism of faulty executions --------------------------------

explore::FuzzOptions faulty_fuzz_options() {
  explore::FuzzOptions options;
  options.algorithm = core::Algorithm::KnownKFull;
  options.iterations = 24;
  options.min_nodes = 8;
  options.max_nodes = 10;
  options.min_agents = 2;
  options.max_agents = 3;
  options.fault_crash_budget = 1;
  options.fault_rewire_budget = 2;
  options.max_recorded_failures = 4;
  return options;
}

TEST(FaultyReplayDeterminism, FuzzDigestIsWorkerCountInvariant) {
  explore::FuzzOptions options = faulty_fuzz_options();
  options.workers = 1;
  const explore::FuzzReport serial = explore::run_fuzz(options);
  for (const std::size_t workers : {2u, 4u}) {
    options.workers = workers;
    const explore::FuzzReport parallel = explore::run_fuzz(options);
    EXPECT_EQ(parallel.digest, serial.digest) << workers << " workers";
    EXPECT_EQ(parallel.failures, serial.failures);
    EXPECT_EQ(parallel.total_actions, serial.total_actions);
    EXPECT_EQ(parallel.failure_samples.size(), serial.failure_samples.size());
  }
}

TEST(FaultyReplayDeterminism, EveryFaultySampleSurvivesTextRoundTrip) {
  const explore::FuzzReport report = explore::run_fuzz(faulty_fuzz_options());
  ASSERT_FALSE(report.failure_samples.empty())
      << "crash+rewire budgets on small instances should surface failures";
  for (const explore::FuzzFailure& failure : report.failure_samples) {
    SCOPED_TRACE("iteration " + std::to_string(failure.iteration));
    const explore::ScheduleTrace reparsed =
        explore::ScheduleTrace::parse(failure.trace.to_text());
    EXPECT_EQ(reparsed.fault_plan(), failure.trace.fault_plan());
    const explore::ReplayOutcome once = explore::replay_trace(reparsed);
    const explore::ReplayOutcome twice = explore::replay_trace(reparsed);
    EXPECT_EQ(once.digest, failure.trace.expected_digest);
    EXPECT_TRUE(once.failed);
    EXPECT_EQ(once.digest, twice.digest);
    EXPECT_EQ(once.reason, twice.reason);
  }
}

// ---- the acceptance pipeline ------------------------------------------------

TEST(FaultPipeline, CrashViolationIsFoundShrunkReplayedAndRediscoveredByMc) {
  // One fixed instance the fault-free fuzzer verifies clean, where a single
  // crash fault plants a reachable violation: the fuzzer must find it, ddmin
  // must shrink it jointly with the schedule, the serialized artifact must
  // replay byte-identically, and mc::check under the shrunk trace's own
  // plan must rediscover a violation deterministically.
  explore::FuzzOptions options;
  options.algorithm = core::Algorithm::KnownKFull;
  options.fixed_nodes = 8;
  options.fixed_homes = {0, 4};
  options.iterations = 40;

  const explore::FuzzReport clean = explore::run_fuzz(options);
  EXPECT_EQ(clean.failures, 0u)
      << "control: the instance must be clean without faults";

  options.fault_crash_budget = 1;
  const explore::FuzzReport faulty = explore::run_fuzz(options);
  ASSERT_GT(faulty.failures, 0u);
  ASSERT_FALSE(faulty.failure_samples.empty());
  const explore::ScheduleTrace& found = faulty.failure_samples.front().trace;
  ASSERT_TRUE(found.fault_plan().has_crashes());

  const explore::ShrinkResult shrunk = explore::shrink_trace(found);
  EXPECT_LE(shrunk.trace.choices.size(), found.choices.size());
  EXPECT_TRUE(shrunk.trace.fault_plan().has_crashes())
      << "shrinking must not lose the fault that makes the trace fail";

  // The serialized artifact is self-contained: parse + replay reproduces
  // the shrunk failure exactly (what `udring_fuzz --replay` checks).
  const explore::ScheduleTrace reparsed =
      explore::ScheduleTrace::parse(shrunk.trace.to_text());
  const explore::ReplayOutcome replayed = explore::replay_trace(reparsed);
  EXPECT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.digest, shrunk.trace.expected_digest);
  EXPECT_EQ(replayed.reason, shrunk.reason);

  // Exhaustive rediscovery: the checker walks every schedule under the
  // shrunk plan; since the shrunk trace is one of them, it must report a
  // violation (not necessarily the same schedule — the first in walk order).
  mc::CheckRequest request;
  request.algorithm = reparsed.algorithm;
  request.problem = reparsed.problem;
  request.node_count = reparsed.node_count;
  request.homes = reparsed.homes;
  request.faults = reparsed.fault_plan();
  request.max_actions = reparsed.max_actions;
  const mc::ModelCheckReport first = mc::check(request);
  EXPECT_FALSE(first.ok);
  EXPECT_EQ(first.verdict, "violation");
  ASSERT_TRUE(first.counterexample.has_value());
  const explore::ReplayOutcome ce = explore::replay_trace(*first.counterexample);
  EXPECT_TRUE(ce.failed);
  EXPECT_EQ(ce.digest, first.counterexample->expected_digest);
  const mc::ModelCheckReport second = mc::check(request);
  EXPECT_EQ(second.digest(), first.digest());
  EXPECT_EQ(second.failure_reason, first.failure_reason);
}

TEST(McFaultBudget, CleanPlanVerifiesAndCrashBudgetFindsViolation) {
  mc::CheckRequest request;
  request.algorithm = core::Algorithm::KnownKFull;
  request.node_count = 6;
  request.homes = {0, 3};

  const mc::ModelCheckReport clean = mc::check(request);
  ASSERT_TRUE(clean.ok) << clean.failure_reason;
  ASSERT_TRUE(clean.complete);

  mc::FaultBudget budget;
  budget.crashes = 1;
  budget.max_fault_action = 4;
  const mc::ModelCheckReport faulty =
      mc::check_with_faults(request, budget, {});
  EXPECT_FALSE(faulty.ok)
      << "a crash-stop fault must break uniform deployment somewhere";
  EXPECT_EQ(faulty.verdict, "violation");
  ASSERT_TRUE(faulty.counterexample.has_value());
  // The counterexample carries its plan and replays stand-alone.
  EXPECT_TRUE(faulty.counterexample->fault_plan().has_crashes());
  const explore::ReplayOutcome replayed =
      explore::replay_trace(*faulty.counterexample);
  EXPECT_TRUE(replayed.failed);
  EXPECT_EQ(replayed.digest, faulty.counterexample->expected_digest);

  const mc::ModelCheckReport again = mc::check_with_faults(request, budget, {});
  EXPECT_EQ(again.digest(), faulty.digest());
  EXPECT_EQ(again.failure_reason, faulty.failure_reason);
}

TEST(McFaultBudget, RewireBudgetEnumerationIsDeterministic) {
  mc::CheckRequest request;
  request.algorithm = core::Algorithm::KnownKFull;
  request.node_count = 6;
  request.homes = {0, 3};
  mc::FaultBudget budget;
  budget.rewires = 1;
  budget.max_fault_action = 4;

  const mc::ModelCheckReport a = mc::check_with_faults(request, budget, {});
  const mc::ModelCheckReport b = mc::check_with_faults(request, budget, {});
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.failure_reason, b.failure_reason);
  if (!a.ok) {
    ASSERT_TRUE(a.counterexample.has_value());
    const explore::ReplayOutcome replayed =
        explore::replay_trace(*a.counterexample);
    EXPECT_TRUE(replayed.failed);
    EXPECT_EQ(replayed.digest, a.counterexample->expected_digest);
  }
}

TEST(McFaultBudget, VerdictAgreesAcrossEveryPruningCombo) {
  // The pruned == unpruned contract extended to fault enumeration: whatever
  // combination of dedup / sleep sets / DPOR / symmetry is requested (fault
  // plans force the unsound ones off internally), the verdict over a
  // nonzero fault budget must not move.
  mc::CheckRequest request;
  request.algorithm = core::Algorithm::KnownKFull;
  request.node_count = 5;
  request.homes = {0, 2};
  mc::FaultBudget budget;
  budget.crashes = 1;
  budget.max_fault_action = 3;

  const mc::ModelCheckReport reference =
      mc::check_with_faults(request, budget, {});
  for (int mask = 0; mask < 16; ++mask) {
    mc::McOptions options;
    options.dedup_states = (mask & 1) != 0;
    options.sleep_sets = (mask & 2) != 0;
    options.dpor = (mask & 4) != 0;
    options.symmetry = (mask & 8) != 0;
    const mc::ModelCheckReport report =
        mc::check_with_faults(request, budget, options);
    EXPECT_EQ(report.ok, reference.ok) << "combo mask " << mask;
    EXPECT_EQ(report.complete, reference.complete) << "combo mask " << mask;
    EXPECT_EQ(report.verdict, reference.verdict) << "combo mask " << mask;
  }
}

}  // namespace
}  // namespace udring
