// Unit tests for sim/ring.h: topology arithmetic and indelible tokens.

#include "sim/ring.h"

#include <gtest/gtest.h>

namespace udring::sim {
namespace {

TEST(Ring, RejectsEmptyRing) {
  EXPECT_THROW(Ring{0}, std::invalid_argument);
}

TEST(Ring, NextWrapsAround) {
  const Ring ring(5);
  EXPECT_EQ(ring.next(0), 1u);
  EXPECT_EQ(ring.next(3), 4u);
  EXPECT_EQ(ring.next(4), 0u);
}

TEST(Ring, SingleNodeSelfLoop) {
  const Ring ring(1);
  EXPECT_EQ(ring.next(0), 0u);
  EXPECT_EQ(ring.distance(0, 0), 0u);
}

TEST(Ring, DistanceIsForwardOnly) {
  const Ring ring(10);
  EXPECT_EQ(ring.distance(2, 7), 5u);
  EXPECT_EQ(ring.distance(7, 2), 5u) << "(2-7) mod 10";
  EXPECT_EQ(ring.distance(4, 4), 0u);
  EXPECT_EQ(ring.distance(9, 0), 1u);
}

TEST(Ring, DistanceTriangleAroundRing) {
  const Ring ring(12);
  for (NodeId a = 0; a < 12; ++a) {
    for (NodeId b = 0; b < 12; ++b) {
      if (a == b) continue;
      EXPECT_EQ(ring.distance(a, b) + ring.distance(b, a), 12u)
          << "forward there + forward back must lap the ring once";
    }
  }
}

TEST(Ring, TokensAccumulateAndPersist) {
  Ring ring(4);
  EXPECT_EQ(ring.total_tokens(), 0u);
  ring.add_token(2);
  ring.add_token(2);
  ring.add_token(0);
  EXPECT_EQ(ring.tokens(2), 2u);
  EXPECT_EQ(ring.tokens(0), 1u);
  EXPECT_EQ(ring.tokens(1), 0u);
  EXPECT_EQ(ring.total_tokens(), 3u);
  EXPECT_EQ(ring.token_counts(), (std::vector<std::size_t>{1, 0, 2, 0}));
}

TEST(Ring, TokensOutOfRangeThrow) {
  Ring ring(3);
  EXPECT_THROW((void)ring.tokens(3), std::out_of_range);
  EXPECT_THROW(ring.add_token(5), std::out_of_range);
}

}  // namespace
}  // namespace udring::sim
