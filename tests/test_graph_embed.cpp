// Tests for the general-network half of §5: connected graphs, port-order
// DFS spanning trees, and uniform deployment on arbitrary topologies through
// the spanning-tree + Euler-tour pipeline.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "embed/graph.h"
#include "embed/tree_deploy.h"
#include "sim/checker.h"
#include "util/rng.h"

namespace udring::embed {
namespace {

TEST(GraphNetwork, RejectsBadGraphs) {
  EXPECT_THROW(GraphNetwork(0, {}), std::invalid_argument);
  EXPECT_THROW(GraphNetwork(3, {{0, 1}}), std::invalid_argument) << "disconnected";
  EXPECT_THROW(GraphNetwork(2, {{0, 0}}), std::invalid_argument) << "self loop";
  EXPECT_THROW(GraphNetwork(2, {{0, 1}, {1, 0}}), std::invalid_argument)
      << "parallel edge";
  EXPECT_NO_THROW(GraphNetwork(1, {}));
  EXPECT_NO_THROW(GraphNetwork(3, {{0, 1}, {1, 2}, {2, 0}}));
}

TEST(GraphGenerators, ShapesHaveExpectedEdgeCounts) {
  EXPECT_EQ(grid_graph(3, 4).edge_count(), 3u * 3u + 2u * 4u);
  EXPECT_EQ(complete_graph(6).edge_count(), 15u);
  EXPECT_EQ(cycle_graph(9).edge_count(), 9u);
  Rng rng(3);
  EXPECT_EQ(random_connected_graph(10, 5, rng).edge_count(), 9u + 5u);
}

TEST(GraphGenerators, ExtraEdgesAreCapped) {
  Rng rng(4);
  const GraphNetwork graph = random_connected_graph(5, 100, rng);
  EXPECT_EQ(graph.edge_count(), 10u) << "K5 has 10 edges";
}

TEST(SpanningTree, IsATreeOnTheSameNodes) {
  Rng rng(7);
  for (const std::size_t n : {5u, 12u, 30u}) {
    const GraphNetwork graph = random_connected_graph(n, n, rng);
    const TreeNetwork tree = graph.spanning_tree();
    EXPECT_EQ(tree.size(), n);
    EXPECT_EQ(tree.edge_count(), n - 1);
    // Every tree edge is a graph edge.
    for (TreeNodeId a = 0; a < n; ++a) {
      for (const TreeNodeId b : tree.neighbors(a)) {
        const auto& graph_neighbors = graph.neighbors(a);
        EXPECT_TRUE(std::find(graph_neighbors.begin(), graph_neighbors.end(), b) !=
                    graph_neighbors.end());
      }
    }
  }
}

TEST(SpanningTree, DeterministicInPortOrder) {
  // Two spanning-tree constructions of the same graph agree — the property
  // that lets anonymous agents agree on the embedded ring.
  Rng rng(9);
  const GraphNetwork graph = random_connected_graph(20, 15, rng);
  const TreeNetwork a = graph.spanning_tree(3);
  const TreeNetwork b = graph.spanning_tree(3);
  for (TreeNodeId v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a.neighbors(v), b.neighbors(v));
  }
}

TEST(SpanningTree, OfCycleIsPath) {
  const TreeNetwork tree = cycle_graph(8).spanning_tree(0);
  std::size_t leaves = 0;
  for (TreeNodeId v = 0; v < tree.size(); ++v) {
    if (tree.degree(v) == 1) ++leaves;
  }
  EXPECT_EQ(leaves, 2u) << "DFS spanning tree of a cycle is a Hamiltonian path";
}

using GraphDeployParam = std::tuple<std::size_t, std::size_t, std::uint64_t>;

class GraphDeploySweep : public ::testing::TestWithParam<GraphDeployParam> {};

TEST_P(GraphDeploySweep, DeploysUniformlyOnGeneralNetworks) {
  const auto [n, k, seed] = GetParam();
  Rng rng(seed * 53 + n);
  const GraphNetwork graph = random_connected_graph(n, n / 2, rng);
  const TreeNetwork tree = graph.spanning_tree();

  std::vector<TreeNodeId> homes;
  std::set<TreeNodeId> used;
  while (homes.size() < k) {
    const auto node = static_cast<TreeNodeId>(rng.below(n));
    if (used.insert(node).second) homes.push_back(node);
  }
  for (const core::Algorithm algorithm :
       {core::Algorithm::KnownKFull, core::Algorithm::UnknownRelaxed}) {
    const TreeDeployReport report = deploy_on_tree(tree, homes, algorithm);
    ASSERT_TRUE(report.success)
        << core::to_string(algorithm) << " n=" << n << " k=" << k
        << " seed=" << seed << ": " << report.failure;
    const auto check = sim::check_positions_uniform(report.virtual_positions,
                                                    report.virtual_ring_size);
    EXPECT_TRUE(check.ok) << check.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GraphDeploySweep,
                         ::testing::Combine(::testing::Values(10, 21, 36),
                                            ::testing::Values(3, 5),
                                            ::testing::Values(1, 2)));

TEST(GraphDeploy, GridCoverageImproves) {
  const GraphNetwork grid = grid_graph(6, 6);
  const TreeNetwork tree = grid.spanning_tree();
  const std::vector<TreeNodeId> homes = {0, 1, 6, 7};  // packed in a corner
  const auto [worst_before, mean_before] = tree_coverage(tree, homes);
  const TreeDeployReport report =
      deploy_on_tree(tree, homes, core::Algorithm::KnownKFull);
  ASSERT_TRUE(report.success) << report.failure;
  EXPECT_LT(report.worst_tree_distance, worst_before);
  EXPECT_LT(report.mean_tree_distance, mean_before);
}

}  // namespace
}  // namespace udring::embed
