// Tests for Algorithms 4+5+6 (core/unknown_relaxed.h): relaxed uniform
// deployment without knowledge of k or n — the estimator (Fig 8), the
// misestimation bound (Lemma 3), the correct-estimator guarantee (Lemma 4),
// message-driven correction (Fig 9), periodic-ring convergence to the
// fundamental ring (Lemmas 7–9, Fig 11), and Theorem 6's complexity claims.

#include "core/unknown_relaxed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "config/generators.h"
#include "core/runner.h"
#include "sim/checker.h"
#include "util/bits.h"
#include "util/rng.h"

namespace udring::core {
namespace {

std::vector<const UnknownRelaxedAgent*> agents_of(const sim::Simulator& sim) {
  std::vector<const UnknownRelaxedAgent*> agents;
  for (sim::AgentId id = 0; id < sim.agent_count(); ++id) {
    agents.push_back(dynamic_cast<const UnknownRelaxedAgent*>(&sim.program(id)));
  }
  return agents;
}

RunReport run_relaxed(std::size_t n, std::vector<std::size_t> homes,
                      sim::SchedulerKind kind = sim::SchedulerKind::RoundRobin,
                      std::uint64_t seed = 1) {
  RunSpec spec;
  spec.node_count = n;
  spec.homes = std::move(homes);
  spec.scheduler = kind;
  spec.seed = seed;
  return run_algorithm(Algorithm::UnknownRelaxed, spec);
}

TEST(AlgoRelaxed, SingleAgentEstimatesExactlyAndSuspends) {
  RunSpec spec;
  spec.node_count = 9;
  spec.homes = {2};
  auto simulator = make_simulator(Algorithm::UnknownRelaxed, spec);
  sim::RoundRobinScheduler scheduler;
  const auto result = simulator->run(scheduler);
  ASSERT_TRUE(result.quiescent());
  EXPECT_TRUE(simulator->all_suspended());
  const auto agents = agents_of(*simulator);
  EXPECT_EQ(agents[0]->estimated_n(), 9u);
  EXPECT_EQ(agents[0]->estimated_k(), 1u);
  EXPECT_EQ(agents[0]->nodes_visited(), 9u * 12u)
      << "4 estimating circuits + 8 patrolling circuits";
}

TEST(AlgoRelaxed, Fig9TrappedAgentFirstEstimatesFour) {
  // Fig 8/9: the ring (11,(1,3)⁴), n = 27. The agent whose walk begins with
  // the (1,3)-repetition sees (1,3)⁴ after 8 tokens and estimates n' = 4.
  RunSpec spec;
  spec.node_count = gen::kFig9Nodes;
  spec.homes = gen::fig9_homes();  // {0, 11, 12, 15, 16, 19, 20, 23, 24}
  auto simulator = make_simulator(Algorithm::UnknownRelaxed, spec);
  sim::RoundRobinScheduler scheduler;
  const auto result = simulator->run(scheduler);
  ASSERT_TRUE(result.quiescent());

  const auto agents = agents_of(*simulator);
  std::size_t trapped = 0;
  std::size_t exact = 0;
  for (sim::AgentId id = 0; id < simulator->agent_count(); ++id) {
    const std::size_t first = agents[id]->first_estimate_n();
    if (first == 4) ++trapped;
    if (first == 27) ++exact;
    EXPECT_TRUE(first == 27 || first <= 27 / 2)
        << "Lemma 3 violated: first estimate " << first;
    EXPECT_EQ(agents[id]->estimated_n(), 27u)
        << "agent " << id << " must converge to the true ring size";
  }
  EXPECT_GE(trapped, 1u) << "the (1,3)⁴ window must trap at least one agent";
  EXPECT_GE(exact, 1u) << "Lemma 4: someone estimates n exactly";

  const auto check = sim::UniformDeploymentOracle(false).check_goal(*simulator);
  EXPECT_TRUE(check.ok) << check.reason;
}

TEST(AlgoRelaxed, TrappedAgentsAreCorrectedByMessages) {
  RunSpec spec;
  spec.node_count = gen::kFig9Nodes;
  spec.homes = gen::fig9_homes();
  auto simulator = make_simulator(Algorithm::UnknownRelaxed, spec);
  sim::RoundRobinScheduler scheduler;
  (void)simulator->run(scheduler);
  std::size_t total_corrections = 0;
  for (const auto* agent : agents_of(*simulator)) {
    total_corrections += agent->corrections();
  }
  EXPECT_GE(total_corrections, 1u)
      << "at least one suspended agent must adopt a larger estimate";
}

TEST(AlgoRelaxed, Lemma3And4OnRandomAperiodicRings) {
  Rng rng(42);
  int aperiodic_rings = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 12 + static_cast<std::size_t>(rng.below(52));
    const std::size_t k =
        2 + static_cast<std::size_t>(rng.below(std::min<std::uint64_t>(n / 2, 10)));
    auto homes = gen::random_homes(n, k, rng);
    if (config_symmetry_degree(homes, n) != 1) continue;  // aperiodic only here
    ++aperiodic_rings;

    RunSpec spec;
    spec.node_count = n;
    spec.homes = homes;
    auto simulator = make_simulator(Algorithm::UnknownRelaxed, spec);
    sim::RoundRobinScheduler scheduler;
    const auto result = simulator->run(scheduler);
    ASSERT_TRUE(result.quiescent()) << "n=" << n << " k=" << k;

    bool someone_exact = false;
    for (const auto* agent : agents_of(*simulator)) {
      const std::size_t first = agent->first_estimate_n();
      EXPECT_TRUE(first == n || 2 * first <= n)
          << "Lemma 3: wrong estimates are at most n/2 (n=" << n << ", got "
          << first << ")";
      someone_exact = someone_exact || (first == n);
      EXPECT_EQ(agent->estimated_n(), n) << "Lemma 5: everyone converges";
    }
    EXPECT_TRUE(someone_exact) << "Lemma 4 violated at n=" << n << " k=" << k;
  }
  EXPECT_GE(aperiodic_rings, 15) << "sweep should mostly draw aperiodic rings";
}

TEST(AlgoRelaxed, Fig11PeriodicRingConvergesToFundamentalRing) {
  // The (6,2)-ring: n = 12, D = (1,2,3)². Every agent estimates N = 6 and
  // the final configuration is uniform although nobody ever learns n.
  const RunReport report = run_relaxed(gen::kFig11Nodes, gen::fig11_homes());
  ASSERT_TRUE(report.success) << report.failure;

  RunSpec spec;
  spec.node_count = gen::kFig11Nodes;
  spec.homes = gen::fig11_homes();
  auto simulator = make_simulator(Algorithm::UnknownRelaxed, spec);
  sim::RoundRobinScheduler scheduler;
  (void)simulator->run(scheduler);
  for (const auto* agent : agents_of(*simulator)) {
    EXPECT_EQ(agent->estimated_n(), 6u) << "Lemma 7: estimates equal N = n/l";
    EXPECT_EQ(agent->estimated_k(), 3u);
  }
}

TEST(AlgoRelaxed, AlreadyUniformConfigIsCheapest) {
  // l = k: every agent sees (g)⁴ with g = n/k after 4 small circuits, then
  // patrols to 12·g and deploys with rank 0 (zero extra moves): exactly 12·g
  // per agent — Theorem 6 with l = k gives O(n) *total* moves.
  const std::size_t n = 24, k = 6;
  const RunReport report = run_relaxed(n, gen::uniform_homes(n, k));
  ASSERT_TRUE(report.success) << report.failure;
  EXPECT_EQ(report.total_moves, k * 12 * (n / k)) << "12·(n/k) per agent";
}

TEST(AlgoRelaxed, MovesScaleInverselyWithSymmetryDegree) {
  // Theorem 6: O(kn/l) moves. Same n, k; growing l must shrink cost.
  const std::size_t n = 48, k = 8;
  Rng rng(7);
  std::vector<std::size_t> moves;
  for (const std::size_t l : {1u, 2u, 4u, 8u}) {
    auto homes = l == 1 ? gen::random_homes(n, k, rng)
                        : gen::periodic_homes(n, k, l, rng);
    while (l == 1 && config_symmetry_degree(homes, n) != 1) {
      homes = gen::random_homes(n, k, rng);
    }
    const RunReport report = run_relaxed(n, homes);
    ASSERT_TRUE(report.success) << "l=" << l << ": " << report.failure;
    moves.push_back(report.total_moves);
    EXPECT_LE(report.total_moves, 14 * k * n / l + k)
        << "Theorem 6 move bound at l=" << l;
  }
  EXPECT_LT(moves.back(), moves.front() / 4)
      << "l = 8 must be far cheaper than l = 1";
}

TEST(AlgoRelaxed, MemoryScalesWithKOverL) {
  const std::size_t n = 48, k = 8;
  Rng rng(9);
  auto aperiodic = gen::random_homes(n, k, rng);
  while (config_symmetry_degree(aperiodic, n) != 1) {
    aperiodic = gen::random_homes(n, k, rng);
  }
  const RunReport asym = run_relaxed(n, aperiodic);
  const RunReport sym = run_relaxed(n, gen::periodic_homes(n, k, 4, rng));
  ASSERT_TRUE(asym.success && sym.success);
  // Aperiodic: D has 4k entries of ~log n bits. l = 4: 4(k/l) entries of
  // ~log(n/l) bits — at least 4x smaller.
  EXPECT_LT(sym.max_memory_bits, asym.max_memory_bits / 2);
}

TEST(AlgoRelaxed, IdealTimeWithinFourteenNOverL) {
  // Theorem 6: O(n/l) time; the proof gives ≤ 14·(n/l) plus O(1).
  for (const std::size_t l : {1u, 2u, 3u}) {
    const std::size_t n = 36, k = 6;
    Rng rng(l);
    auto homes = l == 1 ? gen::random_homes(n, k, rng)
                        : gen::periodic_homes(n, k, l, rng);
    while (l == 1 && config_symmetry_degree(homes, n) != 1) {
      homes = gen::random_homes(n, k, rng);
    }
    RunSpec spec;
    spec.node_count = n;
    spec.homes = homes;
    spec.scheduler = sim::SchedulerKind::Synchronous;
    const RunReport report = run_algorithm(Algorithm::UnknownRelaxed, spec);
    ASSERT_TRUE(report.success) << report.failure;
    EXPECT_LE(report.makespan, 14 * (n / l) + 2 * k + 2) << "l=" << l;
  }
}

TEST(AlgoRelaxed, EstimateMessagesCarryTheSendersWholeState) {
  // White-box: inspect a patroller→suspended handoff on the Fig 9 ring via
  // the event log's Broadcast events.
  RunSpec spec;
  spec.node_count = gen::kFig9Nodes;
  spec.homes = gen::fig9_homes();
  spec.sim_options.record_events = true;
  auto simulator = make_simulator(Algorithm::UnknownRelaxed, spec);
  sim::RoundRobinScheduler scheduler;
  (void)simulator->run(scheduler);
  const auto broadcasts = simulator->log().of_kind(sim::EventKind::Broadcast);
  std::size_t delivered = 0;
  for (const auto& event : broadcasts) delivered += event.detail;
  EXPECT_GE(delivered, 1u) << "patrollers must reach suspended agents";
}

TEST(AlgoRelaxed, PackedConfigurationRegression) {
  // Reproduction finding (DESIGN.md §6 item 7): on the packed Theorem-1
  // witness the head-of-arc agent estimates n' = 1 from the run of gap-1
  // distances and suspends after just 12 moves — long before any correct
  // estimator finishes its 4n-move estimating phase. With the resume offset
  // t bounded by |Dℓ| (the pseudocode's literal reading) it could never be
  // corrected; with the periodic-extension alignment it must be.
  for (const std::size_t n : {64u, 128u, 256u}) {
    const std::size_t k = n / 8;
    RunSpec spec;
    spec.node_count = n;
    spec.homes = gen::packed_quarter_homes(n, k);
    auto simulator = make_simulator(Algorithm::UnknownRelaxed, spec);
    sim::RoundRobinScheduler scheduler;
    const auto result = simulator->run(scheduler);
    ASSERT_TRUE(result.quiescent()) << "n=" << n;
    const auto check =
        sim::UniformDeploymentOracle(false).check_goal(*simulator);
    ASSERT_TRUE(check.ok) << "n=" << n << ": " << check.reason;
    const auto agents = agents_of(*simulator);
    EXPECT_EQ(agents[0]->first_estimate_n(), 1u)
        << "the head agent must start with the degenerate estimate";
    for (const auto* agent : agents) {
      EXPECT_EQ(agent->estimated_n(), n) << "everyone must converge";
    }
  }
}

// ---- parameterized sweeps ----------------------------------------------------

using SweepParam = std::tuple<std::tuple<std::size_t, std::size_t>,
                              sim::SchedulerKind, std::uint64_t>;

class AlgoRelaxedSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AlgoRelaxedSweep, AchievesRelaxedUniformDeployment) {
  const auto [nk, scheduler, seed] = GetParam();
  const auto [n, k] = nk;
  Rng rng(seed * 6949 + n * 17 + k);
  RunSpec spec;
  spec.node_count = n;
  spec.homes = gen::random_homes(n, k, rng);
  spec.scheduler = scheduler;
  spec.seed = seed;
  const RunReport report = run_algorithm(Algorithm::UnknownRelaxed, spec);
  ASSERT_TRUE(report.success)
      << "n=" << n << " k=" << k << " sched=" << sim::to_string(scheduler)
      << " seed=" << seed << ": " << report.failure;
  EXPECT_LE(report.total_moves, 14 * k * n + k) << "Theorem 6 with l = 1";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgoRelaxedSweep,
    ::testing::Combine(
        ::testing::Values(std::make_tuple(4, 2), std::make_tuple(9, 3),
                          std::make_tuple(13, 4), std::make_tuple(16, 16),
                          std::make_tuple(20, 7), std::make_tuple(27, 9),
                          std::make_tuple(33, 6), std::make_tuple(40, 5)),
        ::testing::ValuesIn(sim::all_scheduler_kinds()),
        ::testing::Values(1, 2, 3)));

class AlgoRelaxedPeriodic
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {
};

TEST_P(AlgoRelaxedPeriodic, PeriodicRingsDeployWithoutLearningN) {
  const auto [n, k, l] = GetParam();
  Rng rng(n * 37 + k * 5 + l);
  RunSpec spec;
  spec.node_count = n;
  spec.homes = gen::periodic_homes(n, k, l, rng);
  auto simulator = make_simulator(Algorithm::UnknownRelaxed, spec);
  sim::RoundRobinScheduler scheduler;
  const auto result = simulator->run(scheduler);
  ASSERT_TRUE(result.quiescent()) << "n=" << n << " k=" << k << " l=" << l;
  const auto check = sim::UniformDeploymentOracle(false).check_goal(*simulator);
  ASSERT_TRUE(check.ok) << "n=" << n << " k=" << k << " l=" << l << ": "
                        << check.reason;
  for (const auto* agent : agents_of(*simulator)) {
    EXPECT_EQ(agent->estimated_n(), n / l) << "Lemmas 7–8: estimates = N";
    EXPECT_EQ(agent->estimated_k(), k / l);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlgoRelaxedPeriodic,
                         ::testing::Values(std::make_tuple(12, 6, 2),
                                           std::make_tuple(12, 6, 3),
                                           std::make_tuple(24, 8, 2),
                                           std::make_tuple(24, 8, 4),
                                           std::make_tuple(36, 12, 6),
                                           std::make_tuple(40, 10, 5),
                                           std::make_tuple(48, 16, 8)));

}  // namespace
}  // namespace udring::core
