// Tests for the lane-batched execution engine: sim::BatchArena itself
// (per-lane retirement, chunked stepping) and its integration under
// exp::run_campaign / run_campaign_streaming via
// CampaignOptions::batch_lanes. The contract under test is byte-identity:
// per-scenario results, the campaign digest, CellStats folds and failure
// samples must be identical to the scalar pooled path at ANY lane × worker
// combination — lanes are an execution-interleaving choice, never an
// observable one.

#include "sim/batch_arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/runner.h"
#include "exp/campaign.h"

namespace udring {
namespace {

// ---- BatchArena unit tests --------------------------------------------------

core::RunSpec arena_spec(std::size_t node_count, std::uint64_t seed) {
  core::RunSpec spec;
  spec.node_count = node_count;
  spec.homes = {0, node_count / 2};
  spec.scheduler = sim::SchedulerKind::Random;
  spec.seed = seed;
  return spec;
}

TEST(BatchArena, RejectsZeroLanes) {
  EXPECT_THROW(sim::BatchArena(0), std::invalid_argument);
}

TEST(BatchArena, RetiresEveryFedScenarioAndRefillsPerLane) {
  // 11 scenarios through 3 lanes: every ticket retires exactly once, and
  // every lane is refilled (11 > 2 × 3, so each lane must turn over).
  constexpr std::size_t kLanes = 3;
  constexpr std::uint64_t kScenarios = 11;

  core::LanePool pool(kLanes);
  sim::BatchArena arena(kLanes);
  ASSERT_EQ(arena.lanes(), kLanes);

  std::uint64_t next = 0;
  std::map<std::uint64_t, int> retired;           // ticket -> retire count
  std::vector<int> loads_per_lane(kLanes, 0);
  arena.run(
      [&](std::size_t lane) {
        if (next == kScenarios) return false;
        const core::RunSpec spec = arena_spec(16 + 2 * (next % 4), 100 + next);
        const sim::Instance& instance =
            pool.emplace_instance(lane, core::Algorithm::KnownKFull, spec);
        sim::Scheduler& scheduler = pool.scheduler(
            lane, spec.scheduler, spec.seed, spec.homes.size());
        arena.load(lane, instance, scheduler, spec.scheduler, next);
        ++loads_per_lane[lane];
        ++next;
        return true;
      },
      [&](std::size_t lane, std::uint64_t ticket, const sim::RunResult& result) {
        EXPECT_TRUE(result.quiescent());
        EXPECT_GT(result.actions, 0u);
        // The lane still holds the finished configuration at retire time.
        EXPECT_FALSE(arena.state(lane).staying_nodes().empty());
        ++retired[ticket];
      },
      nullptr);

  ASSERT_EQ(retired.size(), kScenarios);
  for (const auto& [ticket, count] : retired) {
    EXPECT_EQ(count, 1) << "ticket " << ticket;
    EXPECT_LT(ticket, kScenarios);
  }
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_GT(loads_per_lane[lane], 1) << "lane " << lane << " never refilled";
  }
}

TEST(BatchArena, ChunkedRunIsByteIdenticalToMonolithicRun) {
  // A sequence of run_chunk calls must execute the byte-exact action
  // sequence run() would, for any budget — the chunk boundary carries no
  // state. Compare the full event-log digest, not just the outcome.
  const core::RunSpec spec = arena_spec(24, 42);

  core::RunContext reference;
  const core::RunReport expected =
      reference.run(core::Algorithm::KnownKFull, spec);
  const std::uint64_t expected_log = reference.state().log().digest();

  for (const std::size_t budget :
       {std::size_t{1}, std::size_t{7}, sim::BatchArena::kChunkActions}) {
    core::LanePool pool(1);
    const sim::Instance& instance =
        pool.emplace_instance(0, core::Algorithm::KnownKFull, spec);
    sim::Scheduler& scheduler =
        pool.scheduler(0, spec.scheduler, spec.seed, spec.homes.size());
    sim::ExecutionState state;
    state.reset(instance);
    scheduler.attach(state);
    scheduler.reset(spec.homes.size());

    std::optional<sim::RunResult> result;
    std::size_t chunks = 0;
    while (!(result = state.run_chunk(scheduler, spec.scheduler, budget))) {
      ++chunks;
      ASSERT_LT(chunks, 100000u) << "budget " << budget << " never completed";
    }
    EXPECT_EQ(result->actions, expected.result.actions) << "budget " << budget;
    EXPECT_TRUE(result->quiescent()) << "budget " << budget;
    EXPECT_EQ(state.log().digest(), expected_log) << "budget " << budget;
    EXPECT_EQ(state.staying_nodes(), reference.state().staying_nodes());
    EXPECT_EQ(state.metrics().total_moves(),
              reference.state().metrics().total_moves());
  }
}

// ---- campaign-level A/B: batched engine vs scalar pooled path ---------------

exp::CampaignGrid ab_grid() {
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull,
                     core::Algorithm::UnknownRelaxed};
  grid.families = {exp::ConfigFamily::RandomAny};
  grid.schedulers = {sim::SchedulerKind::RoundRobin,
                     sim::SchedulerKind::Random, sim::SchedulerKind::Burst};
  grid.node_counts = {16, 24};
  grid.agent_counts = {2, 4};
  grid.seeds = 3;
  grid.base_seed = 7;
  return grid;
}

TEST(BatchedCampaign, DigestIdenticalAcrossLaneAndWorkerCounts) {
  const exp::CampaignGrid grid = ab_grid();
  // lanes=1 forces the historical scalar path: the independent comparator.
  const exp::CampaignResult reference =
      run_campaign(grid, {.workers = 1, .batch_lanes = 1});

  for (const std::size_t lanes :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{4}, std::size_t{0}}) {  // 0 = hardware
      exp::CampaignOptions options;
      options.workers = workers;
      options.batch_lanes = lanes;
      const exp::CampaignResult materialized = run_campaign(grid, options);
      EXPECT_EQ(materialized.digest(), reference.digest())
          << "lanes=" << lanes << " workers=" << workers;
      EXPECT_EQ(materialized.scenario_hash, reference.scenario_hash)
          << "lanes=" << lanes << " workers=" << workers;
      const exp::CampaignResult streamed =
          run_campaign_streaming(grid, options);
      EXPECT_EQ(streamed.digest(), reference.digest())
          << "streaming lanes=" << lanes << " workers=" << workers;
    }
  }
}

TEST(BatchedCampaign, PerScenarioResultsIdenticalIncludingFinalPositions) {
  exp::CampaignGrid grid = ab_grid();
  exp::CampaignOptions options;
  options.workers = 1;
  options.record_final_positions = true;

  options.batch_lanes = 1;
  const exp::CampaignResult scalar = run_campaign(grid, options);
  options.batch_lanes = 4;
  const exp::CampaignResult batched = run_campaign(grid, options);

  ASSERT_EQ(batched.results.size(), scalar.results.size());
  for (std::size_t i = 0; i < scalar.results.size(); ++i) {
    const exp::ScenarioResult& a = scalar.results[i];
    const exp::ScenarioResult& b = batched.results[i];
    EXPECT_EQ(b.success, a.success) << "scenario " << i;
    EXPECT_EQ(b.total_moves, a.total_moves) << "scenario " << i;
    EXPECT_EQ(b.makespan, a.makespan) << "scenario " << i;
    EXPECT_EQ(b.max_memory_bits, a.max_memory_bits) << "scenario " << i;
    EXPECT_EQ(b.actions, a.actions) << "scenario " << i;
    EXPECT_EQ(b.failure(), a.failure()) << "scenario " << i;
    ASSERT_EQ(b.final_positions().size(), a.final_positions().size())
        << "scenario " << i;
    for (std::size_t p = 0; p < a.final_positions().size(); ++p) {
      EXPECT_EQ(b.final_positions()[p], a.final_positions()[p])
          << "scenario " << i << " position " << p;
    }
    EXPECT_FALSE(a.final_positions().empty()) << "scenario " << i;
  }
}

TEST(BatchedCampaign, FailureSamplesIdenticalAcrossEnginesAndWorkers) {
  // An action budget of 40 fails every scenario; both engines must report
  // the same failure count and the same lowest-index samples, globally and
  // per cell, at any lane × worker count — including the streaming fold.
  exp::CampaignGrid grid = ab_grid();
  grid.sim_options.max_actions = 40;
  exp::CampaignOptions options;
  options.max_recorded_failures = 5;
  options.max_failures_per_cell = 2;

  options.workers = 1;
  options.batch_lanes = 1;
  const exp::CampaignResult scalar = run_campaign(grid, options);
  ASSERT_GT(scalar.failures, 0u);
  ASSERT_EQ(scalar.failure_samples.size(), 5u);

  const auto check = [&](const exp::CampaignResult& candidate,
                         std::size_t lanes, std::size_t workers) {
    EXPECT_EQ(candidate.failures, scalar.failures)
        << "lanes=" << lanes << " workers=" << workers;
    EXPECT_EQ(candidate.failure_samples, scalar.failure_samples)
        << "lanes=" << lanes << " workers=" << workers;
    ASSERT_EQ(candidate.cells.size(), scalar.cells.size());
    for (const auto& [key, stats] : candidate.cells) {
      const exp::CellStats* expected = scalar.cell(key);
      ASSERT_NE(expected, nullptr);
      EXPECT_EQ(stats.failure_samples, expected->failure_samples)
          << "lanes=" << lanes << " workers=" << workers;
    }
  };
  for (const std::size_t lanes : {std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      options.workers = workers;
      options.batch_lanes = lanes;
      check(run_campaign(grid, options), lanes, workers);
      check(run_campaign_streaming(grid, options), lanes, workers);
    }
  }
}

// ---- satellite: memory budget × lanes ---------------------------------------

TEST(BatchedCampaign, MemoryBudgetAndLanesComposeDeterministically) {
  // A binding streaming budget admits an expansion-order prefix of cells.
  // That decision is a function of (grid, options) alone, so with lanes AND
  // a budget both active, every worker × lane combination must report the
  // same skip set and fold the same admitted scenarios to the same digest.
  const exp::CampaignGrid grid = ab_grid();
  const std::vector<exp::CellKey> cells = expand_cells(grid);
  ASSERT_GT(cells.size(), 5u);

  exp::CampaignOptions options;
  options.memory_budget_bytes = 5 * streaming_cell_footprint_bytes(options);
  options.workers = 1;
  options.batch_lanes = 1;
  const exp::CampaignResult reference = run_campaign_streaming(grid, options);
  ASSERT_EQ(reference.cells_skipped, cells.size() - 5);
  ASSERT_EQ(reference.scenarios_skipped, (cells.size() - 5) * grid.seeds);
  ASSERT_EQ(reference.skipped_cell_samples.front(), cells[5]);

  for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      options.workers = workers;
      options.batch_lanes = lanes;
      const exp::CampaignResult budgeted =
          run_campaign_streaming(grid, options);
      EXPECT_EQ(budgeted.digest(), reference.digest())
          << "lanes=" << lanes << " workers=" << workers;
      EXPECT_EQ(budgeted.cells_skipped, reference.cells_skipped);
      EXPECT_EQ(budgeted.scenarios_skipped, reference.scenarios_skipped);
      EXPECT_EQ(budgeted.skipped_cell_samples, reference.skipped_cell_samples);
      EXPECT_EQ(budgeted.scenario_count, reference.scenario_count);
    }
  }
}

// scenario_at must agree with the materialized expansion even when the
// random-access form is the only one a batched streaming worker ever sees.
TEST(BatchedCampaign, ScenarioAtDrivesBatchedStreamIdentically) {
  const exp::CampaignGrid grid = ab_grid();
  const std::vector<exp::Scenario> scenarios = expand(grid);
  const std::vector<exp::CellKey> cells = expand_cells(grid);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const exp::Scenario at = scenario_at(cells, grid.seeds, i);
    EXPECT_EQ(at.index, scenarios[i].index);
    EXPECT_EQ(at.algorithm, scenarios[i].algorithm);
    EXPECT_EQ(at.scheduler, scenarios[i].scheduler);
    EXPECT_EQ(at.node_count, scenarios[i].node_count);
    EXPECT_EQ(at.agent_count, scenarios[i].agent_count);
    EXPECT_EQ(at.repetition, scenarios[i].repetition);
  }
}

}  // namespace
}  // namespace udring
