// Negative-case property tests for the checker (the uniform-deployment
// oracles of Definitions 1 and 2 and the model invariants).
//
// The fuzzer trusts the checker as its bug-detection oracle, so the checker
// itself needs adversarial coverage: every *near miss* — a configuration one
// perturbation away from legal — must be rejected, and rejected for the
// right reason (asserted by reason prefix, so a reshuffled error path cannot
// silently pass the suite). Positive cases live in test_checker.cpp; this
// file fuzzes the negative space around them.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "config/generators.h"
#include "embed/topology.h"
#include "sim/checker.h"
#include "sim/instance.h"
#include "sim/simulator.h"
#include "support/test_agents.h"
#include "util/rng.h"

namespace udring::sim {
namespace {

[[nodiscard]] bool has_prefix(const std::string& text, std::string_view prefix) {
  return text.rfind(prefix, 0) == 0;
}

#define EXPECT_FAILS_WITH(result, prefix)                       \
  do {                                                          \
    const CheckResult r_ = (result);                            \
    EXPECT_FALSE(r_.ok);                                        \
    EXPECT_TRUE(has_prefix(r_.reason, prefix))                  \
        << "reason '" << r_.reason << "' lacks prefix '" << prefix << "'"; \
  } while (0)

// ---- check_positions_uniform near misses ------------------------------------

TEST(PositionsUniformFuzz, OffByOneGapFailsWithGapReason) {
  // Start from an exactly uniform deployment and nudge one agent one node
  // forward: the two adjacent gaps become g-1 and g+1, at least one of which
  // leaves {⌊n/k⌋, ⌈n/k⌉} whenever g ≥ 2.
  Rng rng(404);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 2 + rng.index(6);              // 2..7
    const std::size_t gap = 3 + rng.index(5);            // 3..7 (g-1 ≥ 2)
    const std::size_t n = k * gap;                       // k | n: all gaps = g
    std::vector<std::size_t> positions = gen::uniform_homes(n, k);
    ASSERT_TRUE(check_positions_uniform(positions, n).ok);

    const std::size_t victim = rng.index(k);
    positions[victim] = (positions[victim] + 1) % n;
    EXPECT_FAILS_WITH(check_positions_uniform(positions, n), "gap ");
  }
}

TEST(PositionsUniformFuzz, DuplicatePositionFailsWithSharedNodeReason) {
  Rng rng(405);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 3 + rng.index(6);
    const std::size_t n = k * (2 + rng.index(6));
    std::vector<std::size_t> positions = gen::uniform_homes(n, k);
    // Collapse one agent onto another.
    const std::size_t src = rng.index(k);
    std::size_t dst = rng.index(k);
    if (dst == src) dst = (dst + 1) % k;
    positions[src] = positions[dst];
    EXPECT_FAILS_WITH(check_positions_uniform(positions, n),
                      "two agents share node ");
  }
}

TEST(PositionsUniformFuzz, RandomNonUniformConfigurationsNeverPass) {
  // Draw random distinct positions and cross-check the verdict against a
  // first-principles gap scan; on disagreement-free runs, every rejection
  // must carry one of the two reachable reason prefixes.
  Rng rng(406);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t k = 2 + rng.index(7);
    const std::size_t n = k + rng.index(40);
    std::vector<std::size_t> positions = gen::random_homes(n, k, rng);
    const CheckResult verdict = check_positions_uniform(positions, n);

    const std::vector<std::size_t> gaps = ring_gaps(positions, n);
    const std::size_t floor_gap = n / k;
    const std::size_t ceil_gap = floor_gap + (n % k == 0 ? 0 : 1);
    bool uniform = true;
    for (const std::size_t gap : gaps) {
      uniform = uniform && (gap == floor_gap || gap == ceil_gap);
    }
    EXPECT_EQ(verdict.ok, uniform);
    if (!verdict.ok) {
      EXPECT_TRUE(has_prefix(verdict.reason, "gap ") ||
                  has_prefix(verdict.reason, "two agents share node "))
          << verdict.reason;
    }
  }
}

TEST(PositionsUniformFuzz, EmptyPositionsFail) {
  EXPECT_FAILS_WITH(check_positions_uniform({}, 8), "no agent positions");
}

// ---- Definition 1/2 oracle near misses --------------------------------------

/// Halts immediately at its home node.
class HaltAgent final : public AgentProgram {
 public:
  Behavior run(AgentContext& /*ctx*/) override { co_return; }
  [[nodiscard]] std::string_view name() const override { return "test-halt"; }
};

/// Parks forever (never reaches the halt state).
class ParkAgent final : public AgentProgram {
 public:
  Behavior run(AgentContext& ctx) override {
    for (;;) co_await ctx.wait_message();
  }
  [[nodiscard]] std::string_view name() const override { return "test-park"; }
};

/// Suspends forever; optionally broadcasts first (to fill a mailbox).
class SuspendAgent final : public AgentProgram {
 public:
  explicit SuspendAgent(bool broadcast_first) : broadcast_first_(broadcast_first) {}
  Behavior run(AgentContext& ctx) override {
    if (broadcast_first_) ctx.broadcast(TextMessage{"late"});
    for (;;) co_await ctx.suspend();
  }
  [[nodiscard]] std::string_view name() const override { return "test-suspend"; }

 private:
  bool broadcast_first_;
};

RunResult drain(Simulator& sim) {
  RoundRobinScheduler scheduler;
  return sim.run(scheduler);
}

TEST(Definition1Fuzz, NonHaltedAgentFailsWithStatusReason) {
  // Uniform positions, but one agent parks instead of halting: the status
  // scan must fire before the geometry is even considered.
  Rng rng(407);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t k = 2 + rng.index(4);
    const std::size_t n = k * (2 + rng.index(4));
    const std::size_t parked = rng.index(k);
    Simulator sim(n, gen::uniform_homes(n, k), [&](AgentId id) {
      return id == parked
                 ? std::unique_ptr<AgentProgram>(std::make_unique<ParkAgent>())
                 : std::unique_ptr<AgentProgram>(std::make_unique<HaltAgent>());
    });
    ASSERT_TRUE(drain(sim).quiescent());
    EXPECT_FAILS_WITH(UniformDeploymentOracle(true).check_goal(sim), "agent ");
  }
}

TEST(Definition1Fuzz, AgentStillOnALinkFailsWithStatusReason) {
  // One walker never stops: interrupt the run mid-flight so a link queue is
  // non-empty. The in-transit agent trips the halt-status scan (an agent on
  // a link is by definition not halted — the queue-emptiness clause of
  // Definition 1 is unreachable through observable executions, which is
  // itself worth pinning).
  Simulator sim(8, {0, 4}, [](AgentId id) {
    return id == 0 ? std::unique_ptr<AgentProgram>(
                         std::make_unique<test::EndlessWalkerAgent>())
                   : std::unique_ptr<AgentProgram>(std::make_unique<HaltAgent>());
  });
  RoundRobinScheduler scheduler;
  for (int step = 0; step < 9; ++step) {
    ASSERT_TRUE(sim.step(scheduler));
  }
  std::size_t queued = 0;
  for (NodeId node = 0; node < 8; ++node) queued += sim.queue_length(node);
  ASSERT_GT(queued, 0u) << "walker should be mid-link";
  EXPECT_FAILS_WITH(UniformDeploymentOracle(true).check_goal(sim), "agent ");
}

TEST(Definition2Fuzz, AllSuspendedOnDistinctNodesIsLegal) {
  // Control case: both agents suspend at uniform positions with nobody
  // co-located, so the broadcast reaches no mailbox and the oracle passes.
  Simulator sim(8, {0, 4}, [](AgentId id) {
    return std::make_unique<SuspendAgent>(/*broadcast_first=*/id == 0);
  });
  ASSERT_TRUE(drain(sim).quiescent());
  ASSERT_TRUE(UniformDeploymentOracle(false).check_goal(sim).ok);
}

TEST(Definition2Fuzz, UndeliveredMailFailsWithMessageReason) {
  // Near miss: every agent is suspended, but one of them holds an
  // undelivered message — Definition 2's m_i = ∅ clause. Reachable state:
  // the receiver suspends first, the sender walks over, broadcasts into its
  // mailbox and suspends; we stop before the receiver's wake-up action.
  Simulator meet(8, {0, 7}, [](AgentId id) {
    if (id == 0) return std::unique_ptr<AgentProgram>(std::make_unique<SuspendAgent>(false));
    // Agent 1 walks one hop (7 -> 0), broadcasts into agent 0's mailbox,
    // then suspends alongside it.
    class WalkBroadcastSuspend final : public AgentProgram {
     public:
      Behavior run(AgentContext& ctx) override {
        co_await ctx.move();
        ctx.broadcast(TextMessage{"late"});
        for (;;) co_await ctx.suspend();
      }
      [[nodiscard]] std::string_view name() const override { return "test-wbs"; }
    };
    return std::unique_ptr<AgentProgram>(std::make_unique<WalkBroadcastSuspend>());
  });
  RoundRobinScheduler scheduler;
  scheduler.reset(2);
  // agent 0: arrive home, suspend. agent 1: arrive home, move, arrive at 0,
  // broadcast + suspend. Now agent 0 is suspended *with mail pending*.
  while (!meet.quiescent()) {
    // Stop the drain the moment every agent is suspended even though one
    // still has mail (it is enabled — that is the near miss).
    if (meet.all_suspended()) break;
    ASSERT_TRUE(meet.step(scheduler));
  }
  ASSERT_TRUE(meet.all_suspended());
  EXPECT_FAILS_WITH(UniformDeploymentOracle(false).check_goal(meet),
                    "agent ");
}

// ---- near misses on embedded (non-ring) topologies --------------------------
//
// The checker consumes observable simulator state, and since PR 3 that state
// can live on an Euler-tree or Eulerian-graph virtual ring. The negative
// space must reject for the same reasons there: a wrong verdict on an
// embedded instance would poison both the fuzzer and the mc:: exhaustive
// checker, which trust these oracles on every topology family.

TEST(EmbeddedTopologyFuzz, NonHaltedAgentFailsWithStatusReasonOnEulerTrees) {
  Rng rng(409);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 3 + rng.index(6);  // underlying tree nodes
    sim::Topology topology = embed::random_network_topology(
        embed::RandomNetworkKind::Tree, n, rng);
    const std::size_t k = 2 + rng.index(std::min<std::size_t>(n - 1, 3));
    const std::size_t parked = rng.index(k);
    std::vector<std::size_t> homes =
        embed::draw_virtual_homes(topology, k, rng);
    Simulator sim(std::make_shared<const sim::Instance>(
        std::move(topology), std::move(homes), [&](AgentId id) {
          return id == parked
                     ? std::unique_ptr<AgentProgram>(std::make_unique<ParkAgent>())
                     : std::unique_ptr<AgentProgram>(std::make_unique<HaltAgent>());
        }));
    ASSERT_TRUE(drain(sim).quiescent());
    EXPECT_FAILS_WITH(UniformDeploymentOracle(true).check_goal(sim), "agent ");
  }
}

TEST(EmbeddedTopologyFuzz, SharedNodeFailsWithSharedNodeReasonOnEulerianGraphs) {
  // A bow-tie multigraph (all degrees even) yields a 6-step Eulerian
  // circuit; walk one agent onto another's halt node so the occupancy scan
  // fires — and pin that it fires with the geometry reason, not a status one.
  const sim::Topology topology = embed::eulerian_circuit_topology(
      5, {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}});
  ASSERT_EQ(topology.size(), 6u);
  Rng rng(410);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t gap = 1 + rng.index(topology.size() - 1);
    const std::size_t start = rng.index(topology.size());
    const std::size_t chaser = (start + topology.size() - gap) % topology.size();
    if (chaser == start) continue;
    Simulator sim(std::make_shared<const sim::Instance>(
        topology, std::vector<std::size_t>{start, chaser}, [&](AgentId id) {
          // Agent 1 walks exactly onto agent 0's halt node (the virtual
          // ring's successor order is the circuit, so `gap` moves close it).
          return std::make_unique<test::WalkerAgent>(id == 0 ? 0 : gap);
        }));
    ASSERT_TRUE(drain(sim).quiescent());
    EXPECT_FAILS_WITH(UniformDeploymentOracle(true).check_goal(sim),
                      "two agents share node ");
  }
}

TEST(EmbeddedTopologyFuzz, ModelInvariantsHoldAtEveryStepOfEmbeddedRuns) {
  // The fuzzer's and model checker's per-action oracle must hold along every
  // legal execution of embedded instances too — tree and graph families.
  Rng rng(411);
  for (const embed::RandomNetworkKind kind :
       {embed::RandomNetworkKind::Tree, embed::RandomNetworkKind::Graph}) {
    for (int trial = 0; trial < 10; ++trial) {
      const std::size_t n = 3 + rng.index(6);
      sim::Topology topology = embed::random_network_topology(kind, n, rng);
      const std::size_t k = 1 + rng.index(std::min<std::size_t>(n, 3));
      std::vector<std::size_t> homes =
          embed::draw_virtual_homes(topology, k, rng);
      Simulator sim(std::make_shared<const sim::Instance>(
          std::move(topology), std::move(homes), [k](AgentId) {
            return std::make_unique<test::WalkerAgent>(/*steps=*/k + 4,
                                                       /*drop_token=*/true);
          }));
      RandomScheduler scheduler(rng());
      scheduler.reset(k);
      std::size_t min_tokens = 0;
      while (sim.step(scheduler)) {
        const CheckResult invariants = check_model_invariants(sim, min_tokens);
        ASSERT_TRUE(invariants.ok) << invariants.reason;
        min_tokens = sim.total_tokens();
      }
      EXPECT_TRUE(sim.all_halted());
    }
  }
}

// ---- model invariants -------------------------------------------------------

TEST(ModelInvariantsFuzz, TokenDecreaseFailsWithTokenReason) {
  Simulator sim(6, {0, 3}, [](AgentId) {
    return std::make_unique<HaltAgent>();
  });
  // No tokens were ever dropped; claiming we saw 3 must trip monotonicity.
  EXPECT_FAILS_WITH(check_model_invariants(sim, 3), "token count decreased");
  EXPECT_TRUE(check_model_invariants(sim, 0).ok);
}

// ---- crash-fault near misses (sim/fault.h) ----------------------------------
//
// Goal checks must tolerate dead agents: a crash-stop corpse is exempt from
// the status scan and invisible to the position geometry, but everything a
// corpse *blocks* — an occupied link queue, survivors left at skewed gaps —
// must still be rejected, with the reason naming the blocked thing rather
// than the corpse.

TEST(CrashFaultFuzz, CrashedAfterHaltCorpseIsInvisibleToTheGoal) {
  // Control case: k = 2 at uniform homes, both halt in place (round-robin:
  // agent 0 at action 1, agent 1 at action 2), then agent 1's crash fires at
  // action 2 — a corpse frozen in its staying set, not in a queue. The
  // single survivor's one gap is n = ⌊n/1⌋, so the oracle judges the live
  // deployment uniform despite the corpse at node 4.
  SimOptions options;
  options.faults.crashes = {{1, 2}};
  Simulator sim(8, {0, 4},
                [](AgentId) { return std::make_unique<HaltAgent>(); }, options);
  ASSERT_TRUE(drain(sim).quiescent());
  ASSERT_EQ(sim.status(1), AgentStatus::Crashed);
  const CheckResult goal = UniformDeploymentOracle(true).check_goal(sim);
  EXPECT_TRUE(goal.ok) << goal.reason;
}

TEST(CrashFaultFuzz, SurvivorsAtSkewedGapsFailWithGapReason) {
  // Dead-agent goal reason: three agents halt at the uniform 9/3 spacing,
  // then one is crashed out (after its halt, so no queue is occupied). The
  // two survivors sit at gaps {3, 6} — neither ⌊9/2⌋ nor ⌈9/2⌉ — so the
  // geometry over *live* agents must fail with the gap reason (never by
  // blaming the corpse's status).
  SimOptions options;
  options.faults.crashes = {{2, 3}};
  Simulator sim(9, {0, 3, 6},
                [](AgentId) { return std::make_unique<HaltAgent>(); }, options);
  ASSERT_TRUE(drain(sim).quiescent());
  ASSERT_EQ(sim.status(2), AgentStatus::Crashed);
  EXPECT_FAILS_WITH(UniformDeploymentOracle(true).check_goal(sim), "gap ");
}

TEST(CrashFaultFuzz, CorpseFrozenOnALinkIsReportedThroughWhatItBlocks) {
  // A walker crashed mid-transit freezes inside its link queue forever. The
  // status scan skips the corpse, so the violation surfaces as the frozen
  // queue itself (or, under FIFO, as a live agent starved behind it) — sweep
  // the crash time to catch the walker in transit at least once.
  bool caught_in_queue = false;
  for (std::size_t at_action = 1; at_action < 8; ++at_action) {
    SimOptions options;
    options.faults.crashes = {{0, at_action}};
    Simulator sim(
        8, {0, 4},
        [](AgentId id) {
          return id == 0 ? std::unique_ptr<AgentProgram>(
                               std::make_unique<test::EndlessWalkerAgent>())
                         : std::unique_ptr<AgentProgram>(
                               std::make_unique<HaltAgent>());
        },
        options);
    ASSERT_TRUE(drain(sim).quiescent());
    ASSERT_EQ(sim.status(0), AgentStatus::Crashed);
    std::size_t queued = 0;
    for (NodeId node = 0; node < 8; ++node) queued += sim.queue_length(node);
    if (queued == 0) continue;  // crashed while staying, not in transit
    caught_in_queue = true;
    EXPECT_FAILS_WITH(UniformDeploymentOracle(true).check_goal(sim),
                      "link queue");
  }
  EXPECT_TRUE(caught_in_queue) << "no crash time froze the walker on a link";
}

// ---- dynamic-ring rewiring near misses (sim/fault.h) ------------------------

namespace {

/// Lowest-id agent picks with a scripted rewiring choice: candidate
/// `stride_index` at every rewiring point. Lets a test aim the dynamic-ring
/// adversary at one exact replacement cycle.
class StrideScriptScheduler final : public Scheduler {
 public:
  explicit StrideScriptScheduler(std::size_t stride_index)
      : stride_index_(stride_index) {}
  void reset(std::size_t /*agent_count*/) override {}
  AgentId pick(const std::vector<AgentId>& enabled) override {
    return *std::min_element(enabled.begin(), enabled.end());
  }
  std::size_t pick_index(std::size_t bound) override {
    return stride_index_ % bound;
  }
  [[nodiscard]] std::string_view name() const override {
    return "stride-script";
  }

 private:
  std::size_t stride_index_;
};

}  // namespace

TEST(RewireFaultFuzz, IdentityRewiringKeepsTheDeploymentLegal) {
  // Control case: the rewiring fires but the script picks candidate 0 —
  // stride 1, the original ring — so the walker's 3 hops from node 1 still
  // land on node 4 and the oracle passes. Pins that a rewiring *point* alone
  // changes nothing; only the chosen cycle can.
  SimOptions options;
  options.faults.rewire_at = {1};
  Simulator sim(
      8, {0, 1},
      [](AgentId id) {
        return id == 0 ? std::unique_ptr<AgentProgram>(
                             std::make_unique<HaltAgent>())
                       : std::unique_ptr<AgentProgram>(
                             std::make_unique<test::WalkerAgent>(3));
      },
      options);
  StrideScriptScheduler scheduler(0);
  ASSERT_TRUE(sim.run(scheduler).quiescent());
  ASSERT_EQ(sim.rewires_applied(), 1u);
  const CheckResult goal = UniformDeploymentOracle(true).check_goal(sim);
  EXPECT_TRUE(goal.ok) << goal.reason;
}

TEST(RewireFaultFuzz, AdversarialRewiringSkewsTheDeploymentWithGapReason) {
  // Rewired-ring near miss: same instance, but the script picks candidate 3
  // — stride 7 on n = 8, the reversed ring — so the walker's 3 hops from
  // node 1 land on (1 + 3·7) mod 8 = 6 instead of 4. Positions {0, 6} have
  // gaps {6, 2}; the geometry must fail with the gap reason, and only the
  // rewiring choice separates this from the passing control above.
  SimOptions options;
  options.faults.rewire_at = {1};
  Simulator sim(
      8, {0, 1},
      [](AgentId id) {
        return id == 0 ? std::unique_ptr<AgentProgram>(
                             std::make_unique<HaltAgent>())
                       : std::unique_ptr<AgentProgram>(
                             std::make_unique<test::WalkerAgent>(3));
      },
      options);
  StrideScriptScheduler scheduler(3);
  ASSERT_TRUE(sim.run(scheduler).quiescent());
  ASSERT_EQ(sim.rewires_applied(), 1u);
  ASSERT_EQ(sim.live_stride(), 7u);
  EXPECT_FAILS_WITH(UniformDeploymentOracle(true).check_goal(sim), "gap ");
}

TEST(RewireFaultFuzz, ModelInvariantsHoldAtEveryStepUnderCrashAndRewire) {
  // The fuzzer's per-action oracle must keep holding along faulty
  // executions: crashes freeze agents and rewirings swap the live successor
  // map, but neither may break queue/status/token consistency at any step.
  Rng rng(411);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t k = 2 + rng.index(4);
    const std::size_t n = 8 + rng.index(9);
    SimOptions options;
    options.faults.crashes = {
        {static_cast<AgentId>(rng.index(k)), 1 + rng.index(2 * n)}};
    options.faults.rewire_at = {1 + rng.index(n), 2 * n + rng.index(n)};
    options.faults.normalize();
    Simulator sim(
        n, gen::random_homes(n, k, rng),
        [k](AgentId) {
          return std::make_unique<test::WalkerAgent>(/*steps=*/k + 3,
                                                     /*drop_token=*/true);
        },
        options);
    RandomScheduler scheduler(rng());
    scheduler.reset(k);
    std::size_t min_tokens = 0;
    while (sim.step(scheduler)) {
      const CheckResult invariants = check_model_invariants(sim, min_tokens);
      ASSERT_TRUE(invariants.ok) << invariants.reason;
      min_tokens = sim.total_tokens();
    }
  }
}

TEST(ModelInvariantsFuzz, HoldsAtEveryStepOfRandomRuns) {
  // The fuzzer's per-action oracle must hold along *every* legal execution;
  // sweep random schedules as a sanity floor for the negative cases above.
  Rng rng(408);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t k = 2 + rng.index(4);
    const std::size_t n = 8 + rng.index(9);
    Simulator sim(n, gen::random_homes(n, k, rng), [k](AgentId) {
      return std::make_unique<test::WalkerAgent>(/*steps=*/k + 3,
                                                 /*drop_token=*/true);
    });
    RandomScheduler scheduler(rng());
    scheduler.reset(k);
    std::size_t min_tokens = 0;
    while (sim.step(scheduler)) {
      const CheckResult invariants = check_model_invariants(sim, min_tokens);
      ASSERT_TRUE(invariants.ok) << invariants.reason;
      min_tokens = sim.total_tokens();
    }
  }
}

}  // namespace
}  // namespace udring::sim
