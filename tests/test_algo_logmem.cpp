// Tests for Algorithms 2+3 (core/known_k_logmem.h): the O(log n)-memory
// uniform deployment with termination detection — Theorem 4's claims, the
// base-node conditions, sub-phase bounds, and the strict-paper deployment
// race this reproduction uncovered (a follower claiming a base node before
// its leader arrives).

#include "core/known_k_logmem.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "config/generators.h"
#include "core/runner.h"
#include "sim/checker.h"
#include "util/bits.h"
#include "util/rng.h"

namespace udring::core {
namespace {

std::vector<const KnownKLogMemAgent*> agents_of(const sim::Simulator& sim) {
  std::vector<const KnownKLogMemAgent*> agents;
  for (sim::AgentId id = 0; id < sim.agent_count(); ++id) {
    agents.push_back(dynamic_cast<const KnownKLogMemAgent*>(&sim.program(id)));
  }
  return agents;
}

TEST(AlgoLogMem, SingleAgentBecomesSoleLeader) {
  RunSpec spec;
  spec.node_count = 9;
  spec.homes = {4};
  auto simulator = make_simulator(Algorithm::KnownKLogMem, spec);
  sim::RoundRobinScheduler scheduler;
  (void)simulator->run(scheduler);
  EXPECT_TRUE(sim::UniformDeploymentOracle(true).check_goal(*simulator).ok);
  const auto agents = agents_of(*simulator);
  EXPECT_EQ(agents[0]->role(), KnownKLogMemAgent::Role::Leader);
  EXPECT_EQ(agents[0]->measured_n(), 9u);
}

TEST(AlgoLogMem, Fig5ElectsThreeLeaders) {
  // Fig 5's base-node conditions: three leaders, 6 apart, 2 followers each.
  RunSpec spec;
  spec.node_count = gen::kFig5Nodes;
  spec.homes = gen::fig5_homes();
  auto simulator = make_simulator(Algorithm::KnownKLogMem, spec);
  sim::RoundRobinScheduler scheduler;
  (void)simulator->run(scheduler);
  ASSERT_TRUE(sim::UniformDeploymentOracle(true).check_goal(*simulator).ok);

  std::size_t leaders = 0;
  for (const auto* agent : agents_of(*simulator)) {
    if (agent->role() == KnownKLogMemAgent::Role::Leader) {
      ++leaders;
      EXPECT_EQ(agent->id_distance(), 6u) << "leader segments span 6 nodes";
      EXPECT_EQ(agent->id_follower_count(), 2u);
    }
  }
  EXPECT_EQ(leaders, 3u);
}

TEST(AlgoLogMem, BaseNodeConditionsHold) {
  // On arbitrary configurations: ≥1 leader, leader count divides k, leader
  // homes equidistant with equal follower counts between them.
  Rng rng(314);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 8 + static_cast<std::size_t>(rng.below(40));
    const std::size_t k =
        2 + static_cast<std::size_t>(rng.below(std::min<std::uint64_t>(n - 1, 12)));
    RunSpec spec;
    spec.node_count = n;
    spec.homes = gen::random_homes(n, k, rng);
    auto simulator = make_simulator(Algorithm::KnownKLogMem, spec);
    sim::RoundRobinScheduler scheduler;
    (void)simulator->run(scheduler);
    ASSERT_TRUE(sim::UniformDeploymentOracle(true).check_goal(*simulator).ok);

    std::vector<std::size_t> leader_homes;
    const auto agents = agents_of(*simulator);
    for (sim::AgentId id = 0; id < k; ++id) {
      if (agents[id]->role() == KnownKLogMemAgent::Role::Leader) {
        leader_homes.push_back(simulator->homes()[id]);
      }
    }
    ASSERT_GE(leader_homes.size(), 1u) << "n=" << n << " k=" << k;
    ASSERT_EQ(k % leader_homes.size(), 0u)
        << "leader count must divide k (n=" << n << " k=" << k << ")";

    std::sort(leader_homes.begin(), leader_homes.end());
    const std::size_t b = leader_homes.size();
    std::set<std::size_t> gaps;
    std::set<std::size_t> counts;
    std::vector<std::size_t> homes = simulator->homes();
    std::sort(homes.begin(), homes.end());
    for (std::size_t i = 0; i < b; ++i) {
      const std::size_t from = leader_homes[i];
      const std::size_t to = leader_homes[(i + 1) % b];
      gaps.insert((to + n - from) % n == 0 ? n : (to + n - from) % n);
      std::size_t between = 0;
      for (const std::size_t home : homes) {
        const std::size_t rel = (home + n - from) % n;
        const std::size_t seg = (to + n - from) % n == 0 ? n : (to + n - from) % n;
        if (rel > 0 && rel < seg) ++between;
      }
      counts.insert(between);
    }
    EXPECT_EQ(gaps.size(), 1u) << "base nodes must be equidistant";
    EXPECT_EQ(counts.size(), 1u) << "equal home counts between adjacent bases";
  }
}

TEST(AlgoLogMem, SubPhaseCountWithinCeilLogK) {
  Rng rng(2025);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 10 + static_cast<std::size_t>(rng.below(54));
    const std::size_t k =
        2 + static_cast<std::size_t>(rng.below(std::min<std::uint64_t>(n - 1, 16)));
    RunSpec spec;
    spec.node_count = n;
    spec.homes = gen::random_homes(n, k, rng);
    auto simulator = make_simulator(Algorithm::KnownKLogMem, spec);
    sim::RoundRobinScheduler scheduler;
    (void)simulator->run(scheduler);
    for (const auto* agent : agents_of(*simulator)) {
      EXPECT_LE(agent->sub_phases(), udring::ceil_log2(k) + 1)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(AlgoLogMem, MemoryIsLogNIndependentOfK) {
  // The whole point of Algorithm 2: no distance array. Peak memory must be
  // O(log n) and essentially flat in k.
  const std::size_t n = 128;
  std::vector<std::size_t> peaks;
  for (const std::size_t k : {4u, 8u, 16u, 32u}) {
    Rng rng(k);
    RunSpec spec;
    spec.node_count = n;
    spec.homes = gen::random_homes(n, k, rng);
    const RunReport report = run_algorithm(Algorithm::KnownKLogMem, spec);
    ASSERT_TRUE(report.success) << report.failure;
    peaks.push_back(report.max_memory_bits);
    EXPECT_LE(report.max_memory_bits, 20 * bit_width(n))
        << "memory must stay O(log n), k=" << k;
  }
  // Counters that hold agent counts (fNum, tokens_seen, walk counts) grow by
  // bit_width(k) — logarithmic. What must NOT happen is Θ(k·log n) growth
  // like Algorithm 1's distance array (k=32 would add ≥ 28·7 bits).
  const std::size_t log_growth = 8 * (bit_width(32) - bit_width(4));
  EXPECT_LE(peaks.back(), peaks.front() + log_growth)
      << "memory must grow at most logarithmically with k";
}

TEST(AlgoLogMem, MovesWithinTheoremFourBound) {
  // Selection ≤ 2kn (halving argument) + deployment ≤ 2n per agent.
  Rng rng(555);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 12 + static_cast<std::size_t>(rng.below(48));
    const std::size_t k =
        2 + static_cast<std::size_t>(rng.below(std::min<std::uint64_t>(n - 1, 14)));
    RunSpec spec;
    spec.node_count = n;
    spec.homes = gen::random_homes(n, k, rng);
    const RunReport report = run_algorithm(Algorithm::KnownKLogMem, spec);
    ASSERT_TRUE(report.success) << report.failure;
    EXPECT_LE(report.total_moves, 2 * k * n + 2 * k * n)
        << "n=" << n << " k=" << k;
  }
}

// ---- the strict-paper deployment near-race -----------------------------------
//
// A reproduction finding (see DESIGN.md §6 and EXPERIMENTS.md): read naively,
// Algorithm 3's literal deployment looks racy — a probing follower might
// claim a base node before the leader destined for it arrives. The stress
// instance n = 12, homes {0,1,3,6,7,10} maximizes the danger: two base
// nodes {0,6} with asymmetric interiors, a follower home (10) sitting on a
// target, and an adversary starving the home-6 leader. What actually saves
// the pseudocode is the FIFO link discipline: any agent walking toward the
// base node must queue *behind* the lagging leader and pushes it into its
// halt position before probing. These tests pin that mechanism down with a
// systematic adversarial search (all 720 priority permutations plus random
// schedules): on a substrate without FIFO links the guarantee would vanish.

RunSpec stress_spec() {
  RunSpec spec;
  spec.node_count = gen::kLogmemStressNodes;
  spec.homes = gen::logmem_stress_homes();
  return spec;
}

TEST(AlgoLogMemStrict, SurvivesEveryPriorityPermutation) {
  const RunSpec spec = stress_spec();
  std::vector<sim::AgentId> perm = {0, 1, 2, 3, 4, 5};
  std::size_t schedules = 0;
  do {
    auto simulator = make_simulator(Algorithm::KnownKLogMemStrict, spec);
    sim::PriorityScheduler scheduler(perm);
    const sim::RunResult result = simulator->run(scheduler);
    ASSERT_TRUE(result.quiescent());
    const auto check = sim::UniformDeploymentOracle(true).check_goal(*simulator);
    ASSERT_TRUE(check.ok) << "perm " << ::testing::PrintToString(perm) << ": "
                          << check.reason;
    ++schedules;
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(schedules, 720u);
}

TEST(AlgoLogMemStrict, SurvivesRandomAdversaries) {
  const RunSpec spec = stress_spec();
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    auto simulator = make_simulator(Algorithm::KnownKLogMemStrict, spec);
    sim::RandomScheduler scheduler(seed);
    const sim::RunResult result = simulator->run(scheduler);
    ASSERT_TRUE(result.quiescent());
    const auto check = sim::UniformDeploymentOracle(true).check_goal(*simulator);
    ASSERT_TRUE(check.ok) << "seed " << seed << ": " << check.reason;
  }
}

TEST(AlgoLogMemStrict, LaggingLeaderIsPushedHomeJustInTime) {
  // The mechanism itself: starve the home-6 leader (agent 3). The follower
  // probing node 0 queues behind it in node 0's link queue, so the leader's
  // halt lands first and the follower finds the base occupied.
  const RunSpec spec = stress_spec();
  auto simulator = make_simulator(Algorithm::KnownKLogMemStrict, spec);
  sim::PriorityScheduler scheduler({0, 1, 2, 4, 5, 3});
  const sim::RunResult result = simulator->run(scheduler);
  ASSERT_TRUE(result.quiescent());
  const auto check = sim::UniformDeploymentOracle(true).check_goal(*simulator);
  ASSERT_TRUE(check.ok) << check.reason;
  // The starved leader still ends on a base node (0 or 6).
  const auto agents = agents_of(*simulator);
  ASSERT_EQ(agents[3]->role(), KnownKLogMemAgent::Role::Leader);
  const std::size_t leader_node = simulator->agent_node(3);
  EXPECT_TRUE(leader_node == 0 || leader_node == 6) << "at " << leader_node;
}

TEST(AlgoLogMemFixed, HardenedVariantSurvivesTheSameAdversaries) {
  const RunSpec spec = stress_spec();
  std::vector<sim::AgentId> perm = {0, 1, 2, 3, 4, 5};
  do {
    auto simulator = make_simulator(Algorithm::KnownKLogMem, spec);
    sim::PriorityScheduler scheduler(perm);
    const sim::RunResult result = simulator->run(scheduler);
    ASSERT_TRUE(result.quiescent());
    const auto check = sim::UniformDeploymentOracle(true).check_goal(*simulator);
    ASSERT_TRUE(check.ok) << "perm " << ::testing::PrintToString(perm) << ": "
                          << check.reason;
  } while (std::next_permutation(perm.begin(), perm.end()));
}

// ---- parameterized sweep -----------------------------------------------------

using SweepParam = std::tuple<std::tuple<std::size_t, std::size_t>,
                              sim::SchedulerKind, std::uint64_t>;

class AlgoLogMemSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AlgoLogMemSweep, AchievesUniformDeploymentWithTermination) {
  const auto [nk, scheduler, seed] = GetParam();
  const auto [n, k] = nk;
  Rng rng(seed * 104729 + n * 131 + k);
  RunSpec spec;
  spec.node_count = n;
  spec.homes = gen::random_homes(n, k, rng);
  spec.scheduler = scheduler;
  spec.seed = seed;
  const RunReport report = run_algorithm(Algorithm::KnownKLogMem, spec);
  ASSERT_TRUE(report.success)
      << "n=" << n << " k=" << k << " sched=" << sim::to_string(scheduler)
      << " seed=" << seed << ": " << report.failure;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgoLogMemSweep,
    ::testing::Combine(
        ::testing::Values(std::make_tuple(4, 2), std::make_tuple(9, 3),
                          std::make_tuple(12, 6), std::make_tuple(16, 16),
                          std::make_tuple(18, 9), std::make_tuple(21, 5),
                          std::make_tuple(30, 10), std::make_tuple(41, 8)),
        ::testing::ValuesIn(sim::all_scheduler_kinds()),
        ::testing::Values(1, 2, 3)));

class AlgoLogMemPeriodic
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {
};

TEST_P(AlgoLogMemPeriodic, PeriodicConfigurationsDeployCleanly) {
  const auto [n, k, l] = GetParam();
  Rng rng(n * 7 + k * 3 + l);
  RunSpec spec;
  spec.node_count = n;
  spec.homes = gen::periodic_homes(n, k, l, rng);
  const RunReport report = run_algorithm(Algorithm::KnownKLogMem, spec);
  ASSERT_TRUE(report.success) << "n=" << n << " k=" << k << " l=" << l << ": "
                              << report.failure;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlgoLogMemPeriodic,
                         ::testing::Values(std::make_tuple(12, 6, 2),
                                           std::make_tuple(12, 6, 3),
                                           std::make_tuple(24, 8, 4),
                                           std::make_tuple(36, 12, 6),
                                           std::make_tuple(40, 20, 5),
                                           std::make_tuple(48, 16, 8)));

}  // namespace
}  // namespace udring::core
