// Unit + property tests for core/targets.h — the §3.1.1 arithmetic that
// places k targets on an n-ring for any n, k (not just n = ck), split into b
// equal base segments.

#include "core/targets.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "sim/checker.h"
#include "util/bits.h"

namespace udring::core {
namespace {

TEST(TargetPlan, ExactDivisionSingleBase) {
  const TargetPlan plan = make_target_plan(16, 4, 1);
  EXPECT_EQ(plan.floor_gap, 4u);
  EXPECT_EQ(plan.ceil_gaps, 0u);
  EXPECT_EQ(plan.per_seg, 4u);
  EXPECT_EQ(plan.seg_len, 16u);
  for (std::size_t j = 0; j <= 4; ++j) {
    EXPECT_EQ(plan.offset(j), 4 * j);
  }
}

TEST(TargetPlan, RemainderGoesToLeadingGaps) {
  // n = 14, k = 4: ⌊n/k⌋ = 3, r = 2 → gaps (4,4,3,3).
  const TargetPlan plan = make_target_plan(14, 4, 1);
  EXPECT_EQ(plan.floor_gap, 3u);
  EXPECT_EQ(plan.ceil_gaps, 2u);
  EXPECT_EQ(plan.interval(1), 4u);
  EXPECT_EQ(plan.interval(2), 4u);
  EXPECT_EQ(plan.interval(3), 3u);
  EXPECT_EQ(plan.interval(4), 3u);
  EXPECT_EQ(plan.offset(4), 14u) << "offsets close the segment";
}

TEST(TargetPlan, MultiBaseSplitsRemainderEvenly) {
  // n = 20, k = 6, b = 2: r = 2, per segment: 3 targets, 1 leading ceil gap.
  const TargetPlan plan = make_target_plan(20, 6, 2);
  EXPECT_EQ(plan.seg_len, 10u);
  EXPECT_EQ(plan.per_seg, 3u);
  EXPECT_EQ(plan.ceil_gaps, 1u);
  EXPECT_EQ(plan.floor_gap, 3u);
  EXPECT_EQ(plan.offset(plan.per_seg), plan.seg_len)
      << "per_seg intervals must span exactly one segment";
}

TEST(TargetPlan, RejectsInvalidArguments) {
  EXPECT_THROW((void)make_target_plan(0, 1, 1), std::invalid_argument);
  EXPECT_THROW((void)make_target_plan(10, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)make_target_plan(10, 4, 0), std::invalid_argument);
  EXPECT_THROW((void)make_target_plan(10, 11, 1), std::invalid_argument);  // k > n
  EXPECT_THROW((void)make_target_plan(10, 4, 3), std::invalid_argument);   // 3 ∤ 10
  EXPECT_THROW((void)make_target_plan(12, 4, 3), std::invalid_argument);   // 3 ∤ 4
}

TEST(AllTargets, MatchesManualExample) {
  // Fig 2: n = 16, k = 4 → targets every 4 nodes from the base.
  const TargetPlan plan = make_target_plan(16, 4, 1);
  EXPECT_EQ(all_targets(plan, 0), (std::vector<std::size_t>{0, 4, 8, 12}));
  EXPECT_EQ(all_targets(plan, 5), (std::vector<std::size_t>{1, 5, 9, 13}));
}

// Property sweep: for every (n, k, b) with b | gcd(n, k), the k targets are
// distinct and their gaps form a uniform deployment per the checker (the
// checker recomputes gaps independently).
class TargetPlanProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(TargetPlanProperty, TargetsAreAUniformDeployment) {
  const auto [n, k] = GetParam();
  const std::size_t g = udring::gcd(n, k);
  for (std::size_t b = 1; b <= g; ++b) {
    if (g % b != 0) continue;
    const TargetPlan plan = make_target_plan(n, k, b);
    for (const std::size_t base : {std::size_t{0}, n / 2, n - 1}) {
      const auto targets = all_targets(plan, base);
      ASSERT_EQ(targets.size(), k);
      const std::set<std::size_t> distinct(targets.begin(), targets.end());
      ASSERT_EQ(distinct.size(), k) << "duplicate target (n=" << n << " k=" << k
                                    << " b=" << b << " base=" << base << ")";
      const auto check = sim::check_positions_uniform(targets, n);
      ASSERT_TRUE(check.ok) << "n=" << n << " k=" << k << " b=" << b
                            << " base=" << base << ": " << check.reason;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TargetPlanProperty,
    ::testing::Values(std::make_tuple(4, 2), std::make_tuple(9, 3),
                      std::make_tuple(12, 4), std::make_tuple(12, 6),
                      std::make_tuple(13, 5), std::make_tuple(14, 4),
                      std::make_tuple(16, 4), std::make_tuple(18, 9),
                      std::make_tuple(20, 6), std::make_tuple(23, 7),
                      std::make_tuple(24, 8), std::make_tuple(27, 9),
                      std::make_tuple(30, 12), std::make_tuple(64, 16),
                      std::make_tuple(100, 40), std::make_tuple(101, 13)));

TEST(TargetPlan, IntervalsSumToSegment) {
  for (std::size_t n = 2; n <= 40; ++n) {
    for (std::size_t k = 1; k <= n; ++k) {
      const TargetPlan plan = make_target_plan(n, k, 1);
      std::size_t total = 0;
      for (std::size_t j = 1; j <= plan.per_seg; ++j) total += plan.interval(j);
      ASSERT_EQ(total, n) << "n=" << n << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace udring::core
