// Tests for the exp/campaign engine: deterministic grid expansion, the
// worker-count-invariance contract (same grid + seed ⇒ byte-identical
// aggregated results at 1 vs 8 workers), failure propagation into the
// campaign summary, and the ScenarioResult hot-struct contract (success
// path carries no cold allocations — pinned with a counting allocator,
// the same technique bench_huge_instance uses).

#include "exp/campaign.h"

#include <gtest/gtest.h>

#include <string>

// Defines the global counting operator new for this test binary (one TU
// only); measurement windows snapshot udring::allocation_count() around
// single-threaded campaign runs. Compiled out under sanitizers, whose own
// operator new must stay in charge — the pinned test skips there.
#include "util/counting_allocator.h"

namespace udring::exp {
namespace {

CampaignGrid small_grid() {
  CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull, core::Algorithm::UnknownRelaxed};
  grid.families = {ConfigFamily::RandomAny};
  grid.schedulers = {sim::SchedulerKind::RoundRobin, sim::SchedulerKind::Random};
  grid.node_counts = {16, 24, 32};
  grid.agent_counts = {2, 4};
  grid.seeds = 4;
  grid.base_seed = 7;
  return grid;
}

TEST(Campaign, ExpansionIsDeterministicAndIndexed) {
  const CampaignGrid grid = small_grid();
  const auto a = expand(grid);
  const auto b = expand(grid);
  ASSERT_EQ(a.size(), 2u * 2u * 3u * 2u * 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, i);
    EXPECT_EQ(a[i].algorithm, b[i].algorithm);
    EXPECT_EQ(a[i].node_count, b[i].node_count);
    EXPECT_EQ(a[i].agent_count, b[i].agent_count);
    EXPECT_EQ(a[i].repetition, b[i].repetition);
  }
}

TEST(Campaign, ExpansionSkipsInfeasibleCombinations) {
  CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull};
  grid.families = {ConfigFamily::Packed};
  grid.node_counts = {16};
  grid.agent_counts = {2, 4, 5, 20};  // 5 > ceil(16/4), 20 > n
  grid.seeds = 1;
  const auto scenarios = expand(grid);
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].agent_count, 2u);
  EXPECT_EQ(scenarios[1].agent_count, 4u);

  CampaignGrid periodic = grid;
  periodic.families = {ConfigFamily::Periodic};
  periodic.node_counts = {24};
  periodic.agent_counts = {6};
  periodic.symmetries = {2, 3, 5};  // 5 divides neither 24 nor 6
  EXPECT_EQ(expand(periodic).size(), 2u);
}

TEST(Campaign, ByteIdenticalResultsAtOneVersusEightWorkers) {
  const CampaignGrid grid = small_grid();
  const CampaignResult serial = run_campaign(grid, {.workers = 1});
  const CampaignResult parallel = run_campaign(grid, {.workers = 8});

  ASSERT_EQ(serial.results.size(), parallel.results.size());
  EXPECT_EQ(serial.workers_used, 1u);
  EXPECT_EQ(parallel.workers_used, 8u);
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    const ScenarioResult& a = serial.results[i];
    const ScenarioResult& b = parallel.results[i];
    ASSERT_EQ(a.success, b.success) << "scenario " << i;
    ASSERT_EQ(a.total_moves, b.total_moves) << "scenario " << i;
    ASSERT_EQ(a.makespan, b.makespan) << "scenario " << i;
    ASSERT_EQ(a.max_memory_bits, b.max_memory_bits) << "scenario " << i;
    ASSERT_EQ(a.actions, b.actions) << "scenario " << i;
  }
  EXPECT_EQ(serial.digest(), parallel.digest());

  // The rendered summaries differ only in the reported worker count.
  std::string serial_text = serial.summary();
  std::string parallel_text = parallel.summary();
  const auto strip = [](std::string& text, const std::string& needle) {
    const auto at = text.find(needle);
    ASSERT_NE(at, std::string::npos);
    text.erase(at, needle.size());
  };
  strip(serial_text, "workers: 1");
  strip(parallel_text, "workers: 8");
  EXPECT_EQ(serial_text, parallel_text);
}

TEST(Campaign, InstancesArePairedAcrossAlgorithmsAndSchedulers) {
  // Cross-algorithm and cross-scheduler cells must be measured on the same
  // drawn configurations (the substream key covers only the instance
  // coordinates), so their columns are paired comparisons.
  const CampaignGrid grid = small_grid();
  const auto scenarios = expand(grid);
  const Scenario* reference = nullptr;
  std::size_t paired = 0;
  for (const Scenario& s : scenarios) {
    if (s.node_count != 24 || s.agent_count != 4 || s.repetition != 2) continue;
    if (reference == nullptr) {
      reference = &s;
      continue;
    }
    EXPECT_TRUE(s.algorithm != reference->algorithm ||
                s.scheduler != reference->scheduler);
    EXPECT_EQ(scenario_homes(grid, s), scenario_homes(grid, *reference));
    ++paired;
  }
  EXPECT_EQ(paired, 3u);  // 2 algorithms × 2 schedulers − the reference
}

TEST(Campaign, RepeatedRunsAreIdentical) {
  const CampaignGrid grid = small_grid();
  EXPECT_EQ(run_campaign(grid, {.workers = 3}).digest(),
            run_campaign(grid, {.workers = 5}).digest());
}

TEST(Campaign, AllScenariosSucceedOnPaperAlgorithms) {
  const CampaignResult result = run_campaign(small_grid(), {.workers = 4});
  EXPECT_TRUE(result.all_ok()) << result.summary();
  EXPECT_EQ(result.failures, 0u);
  for (const auto& [key, stats] : result.cells) {
    EXPECT_EQ(stats.runs, 4u);
    EXPECT_EQ(stats.successes, stats.runs);
  }
}

TEST(Campaign, FailingScenariosSurfaceInSummary) {
  CampaignGrid grid = small_grid();
  // An action budget of 1 cannot complete any run: every scenario must be
  // reported as a failure, not silently averaged away.
  grid.sim_options.max_actions = 1;
  const CampaignResult result = run_campaign(grid, {.workers = 4});
  EXPECT_FALSE(result.all_ok());
  EXPECT_EQ(result.failures, result.scenarios.size());
  ASSERT_FALSE(result.failure_samples.empty());
  EXPECT_NE(result.failure_samples.front().find("action limit"),
            std::string::npos);
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("FAIL"), std::string::npos);
  EXPECT_NE(summary.find("0.0%"), std::string::npos);
}

TEST(Campaign, ExceptionsAreContainedAsFailures) {
  // n = 8, k = 8, l = 4 passes the static feasibility screen (l | n, l | k,
  // k/l = 2 ≤ n/l = 2) but periodic_homes throws at draw time: a 2-agent
  // factor on a 2-node segment is forcibly symmetric, so no aperiodic factor
  // exists. The worker must contain the throw as a reported failure.
  CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull};
  grid.families = {ConfigFamily::Periodic};
  grid.node_counts = {8};
  grid.agent_counts = {8};
  grid.symmetries = {4};
  grid.seeds = 2;
  const CampaignResult result = run_campaign(grid, {.workers = 2});
  ASSERT_EQ(result.scenarios.size(), 2u);
  EXPECT_EQ(result.failures, 2u);
  ASSERT_FALSE(result.failure_samples.empty());
  EXPECT_NE(result.failure_samples.front().find("exception:"),
            std::string::npos);
}

TEST(Campaign, FinalPositionsRecordedOnRequest) {
  CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull};
  grid.node_counts = {16};
  grid.agent_counts = {4};
  grid.seeds = 1;
  const CampaignResult without = run_campaign(grid, {.workers = 1});
  ASSERT_EQ(without.results.size(), 1u);
  EXPECT_TRUE(without.results[0].final_positions().empty());
  EXPECT_EQ(without.results[0].cold, nullptr);  // success path stays cold-free

  const CampaignResult with = run_campaign(
      grid, {.workers = 1, .record_final_positions = true});
  ASSERT_EQ(with.results.size(), 1u);
  EXPECT_EQ(with.results[0].final_positions().size(), 4u);
}

TEST(Campaign, MeasureCellMatchesExplicitCampaign) {
  const Averages direct = measure_cell(core::Algorithm::KnownKFull,
                                       ConfigFamily::RandomAny, 32, 4, 1, 5);
  CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull};
  grid.node_counts = {32};
  grid.agent_counts = {4};
  grid.seeds = 5;
  const Averages via_campaign = run_campaign(grid).averages(
      CellKey{core::Algorithm::KnownKFull, ConfigFamily::RandomAny,
              sim::SchedulerKind::Synchronous, 32, 4, 1});
  EXPECT_EQ(direct.runs, via_campaign.runs);
  EXPECT_EQ(direct.moves, via_campaign.moves);
  EXPECT_EQ(direct.makespan, via_campaign.makespan);
  EXPECT_EQ(direct.success_rate, via_campaign.success_rate);
}

TEST(Campaign, MeasureCellThrowsOnInfeasibleCell) {
  // The old bench plumbing threw from the generator when a sweep asked for
  // an impossible cell; the campaign veneer must stay as loud instead of
  // averaging an empty cell into a silent row of zeros.
  EXPECT_THROW((void)measure_cell(core::Algorithm::KnownKFull,
                                  ConfigFamily::Periodic, 384, 24, 5, 1),
               std::invalid_argument);
  EXPECT_THROW((void)measure_cell(core::Algorithm::KnownKFull,
                                  ConfigFamily::Packed, 16, 10, 1, 1),
               std::invalid_argument);
}

TEST(Campaign, ScenarioResultHotStructStaysSmall) {
  // The trim contract: five measures + one cold pointer. Growing this
  // struct grows every materialized sweep by scenarios × delta bytes.
  static_assert(sizeof(ScenarioResult) <= 6 * sizeof(void*),
                "ScenarioResult hot struct grew; move new fields to Cold");
  ScenarioResult ok;
  ok.success = true;
  EXPECT_EQ(ok.cold, nullptr);
  EXPECT_TRUE(ok.failure().empty());
  EXPECT_TRUE(ok.final_positions().empty());
}

TEST(Campaign, SuccessPathAllocationsAreBoundedSteadyState) {
#if !UDRING_COUNTING_ALLOCATOR
  GTEST_SKIP() << "counting allocator disabled under sanitizers";
#else
  // Warm a single-worker streaming campaign, then measure an identical
  // repeat: the steady-state allowance is the O(k) per-run objects (agent
  // programs + coroutine frames + homes draws) plus O(cells + samples)
  // aggregation state. ScenarioResult cold data must contribute nothing on
  // the all-success path — reintroducing a per-scenario string or positions
  // vector busts the bound immediately (2 extra allocs/scenario against a
  // measured ~1 of slack).
  CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull};
  grid.schedulers = {sim::SchedulerKind::RoundRobin};
  grid.node_counts = {24};
  grid.agent_counts = {4};
  grid.seeds = 16;
  const CampaignOptions options{.workers = 1};

  const CampaignResult warmup = run_campaign_streaming(grid, options);
  ASSERT_TRUE(warmup.all_ok()) << warmup.summary();

  const std::size_t before = udring::allocation_count();
  const CampaignResult measured = run_campaign_streaming(grid, options);
  const std::size_t allocs = udring::allocation_count() - before;
  ASSERT_TRUE(measured.all_ok());

  const std::size_t scenarios = measured.scenario_count;
  ASSERT_EQ(scenarios, 16u);
  // Per-run allowance mirrors bench_huge_instance's 16 × k; the constant
  // covers the worker pool, the cell map and the result scaffolding.
  const std::size_t allowance = scenarios * (16 * 4) + 256;
  EXPECT_LE(allocs, allowance)
      << "steady-state campaign allocations regressed: " << allocs
      << " allocs for " << scenarios << " scenarios";
#endif
}

TEST(Campaign, CellLookupMissReturnsNull) {
  CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull};
  grid.node_counts = {16};
  grid.agent_counts = {4};
  const CampaignResult result = run_campaign(grid);
  EXPECT_NE(result.cell(CellKey{core::Algorithm::KnownKFull,
                                ConfigFamily::RandomAny,
                                sim::SchedulerKind::Synchronous, 16, 4, 1}),
            nullptr);
  EXPECT_EQ(result.cell(CellKey{core::Algorithm::Rendezvous,
                                ConfigFamily::RandomAny,
                                sim::SchedulerKind::Synchronous, 16, 4, 1}),
            nullptr);
  EXPECT_EQ(result.averages(CellKey{core::Algorithm::Rendezvous,
                                    ConfigFamily::RandomAny,
                                    sim::SchedulerKind::Synchronous, 16, 4, 1})
                .runs,
            0u);
}

TEST(Campaign, AccumulatorMergeNeverDuplicatesAScenarioIndex) {
  // Scenario indices are unique across workers by construction, but the
  // bounded sample buffers are now also fed by checkpoint resumes and shard
  // merges — a replayed index (double-submitted shard caught late, a buggy
  // future caller) must fold to ONE sample, not two. insert_bounded's
  // duplicate-index guard is the last line of defense; pin it through the
  // public accumulator merge path.
  CampaignAccumulator a;
  a.failures = 1;
  a.failure_samples = {{3, "scenario 3 failed"}};
  a.cells[CellKey{core::Algorithm::KnownKFull, ConfigFamily::RandomAny,
                  sim::SchedulerKind::RoundRobin, 16, 4, 1}]
      .failure_samples = {{3, "scenario 3 failed"}};
  CampaignAccumulator b;
  b.failures = 2;
  b.failure_samples = {{3, "scenario 3 failed"}, {7, "scenario 7 failed"}};
  b.cells[CellKey{core::Algorithm::KnownKFull, ConfigFamily::RandomAny,
                  sim::SchedulerKind::RoundRobin, 16, 4, 1}]
      .failure_samples = {{3, "scenario 3 failed"}, {7, "scenario 7 failed"}};
  merge_accumulators(a, std::move(b), /*max_failures_per_cell=*/4,
                     /*max_recorded_failures=*/16);
  const FailureSamples expected = {{3, "scenario 3 failed"},
                                   {7, "scenario 7 failed"}};
  EXPECT_EQ(a.failure_samples, expected);
  EXPECT_EQ(a.cells.begin()->second.failure_samples, expected);
}

TEST(Campaign, CellStatsMergeChecksSumsAtTheUint64Boundary) {
  // merge_cell_stats is the checked path shared by checkpoint resume and
  // shard merging: exactly at the boundary it succeeds, one past it throws
  // std::overflow_error naming the field — never a silent wrap.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  CellStats at_boundary;
  at_boundary.moves_sum = kMax - 10;
  CellStats add_ten;
  add_ten.moves_sum = 10;
  merge_cell_stats(at_boundary, std::move(add_ten),
                   /*max_failures_per_cell=*/4);
  EXPECT_EQ(at_boundary.moves_sum, kMax);  // == 2^64 - 1: still exact

  CellStats one_more;
  one_more.moves_sum = 1;
  try {
    merge_cell_stats(at_boundary, std::move(one_more),
                     /*max_failures_per_cell=*/4);
    FAIL() << "wrapping merge must throw";
  } catch (const std::overflow_error& error) {
    EXPECT_NE(std::string(error.what()).find("moves_sum"), std::string::npos)
        << error.what();
  }

  CellStats actions_wrap_a;
  actions_wrap_a.actions_sum = kMax;
  CellStats actions_wrap_b;
  actions_wrap_b.actions_sum = 1;
  EXPECT_THROW(merge_cell_stats(actions_wrap_a, std::move(actions_wrap_b),
                                /*max_failures_per_cell=*/4),
               std::overflow_error);
}

TEST(Campaign, AveragesReportSketchQuantiles) {
  const CampaignResult result = run_campaign(small_grid());
  for (const auto& [key, stats] : result.cells) {
    const Averages avg = stats.averages();
    ASSERT_GT(avg.runs, 0u);
    EXPECT_EQ(stats.moves_sketch.total(), stats.runs);
    EXPECT_EQ(stats.makespan_sketch.total(), stats.runs);
    // Quantiles are ordered and bracketed by the exact extremes.
    EXPECT_LE(avg.moves_p50, avg.moves_p90);
    EXPECT_LE(avg.moves_p90, avg.moves_p99);
    EXPECT_GE(avg.moves_p50, static_cast<double>(stats.moves_sketch.min()));
    EXPECT_LE(avg.moves_p99, static_cast<double>(stats.moves_sketch.max()));
    EXPECT_LE(avg.makespan_p50, avg.makespan_p90);
    EXPECT_LE(avg.makespan_p90, avg.makespan_p99);
  }
}

}  // namespace
}  // namespace udring::exp
