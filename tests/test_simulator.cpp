// Tests for sim/simulator.h — the execution model itself. These pin down the
// §2.1 semantics the algorithms' correctness proofs lean on: atomic actions,
// FIFO links (no overtaking), the initial-buffer/home-first rule, message
// delivery to staying agents only, Definition-1/2 terminal states, causal
// ideal-time stamps, and deterministic replay.

#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sim/checker.h"
#include "sim/scheduler.h"
#include "support/test_agents.h"

namespace udring::sim {
namespace {

using test::CollectorAgent;
using test::EndlessWalkerAgent;
using test::MessengerAgent;
using test::ProberAgent;
using test::SitterAgent;
using test::SuspenderAgent;
using test::ThrowerAgent;
using test::WalkerAgent;

TEST(SimulatorConstruction, ValidatesConfiguration) {
  const auto factory = [](AgentId) { return std::make_unique<SitterAgent>(0); };
  EXPECT_THROW(Simulator(5, {}, factory), std::invalid_argument);
  EXPECT_THROW(Simulator(5, {0, 0}, factory), std::invalid_argument);
  EXPECT_THROW(Simulator(5, {0, 5}, factory), std::invalid_argument);
  EXPECT_THROW(Simulator(2, {0, 1, 0}, factory), std::invalid_argument);
  EXPECT_NO_THROW(Simulator(5, {0, 2, 4}, factory));
}

TEST(SimulatorConstruction, AgentsStartInTransitToTheirHomes) {
  Simulator sim(6, {1, 4}, [](AgentId) { return std::make_unique<SitterAgent>(1); });
  EXPECT_EQ(sim.status(0), AgentStatus::InTransit);
  EXPECT_EQ(sim.status(1), AgentStatus::InTransit);
  EXPECT_EQ(sim.agent_node(0), 1u);
  EXPECT_EQ(sim.agent_node(1), 4u);
  EXPECT_EQ(sim.queue_length(1), 1u);
  EXPECT_EQ(sim.queue_length(4), 1u);
  EXPECT_EQ(sim.enabled().size(), 2u) << "every initial agent is a queue head";
}

TEST(SimulatorRun, WalkerMovesExactlyItsSteps) {
  Simulator sim(8, {3}, [](AgentId) { return std::make_unique<WalkerAgent>(5); });
  RoundRobinScheduler scheduler;
  const RunResult result = sim.run(scheduler);
  EXPECT_TRUE(result.quiescent());
  EXPECT_TRUE(sim.all_halted());
  EXPECT_EQ(sim.metrics().agent(0).moves, 5u);
  EXPECT_EQ(sim.agent_node(0), 0u) << "3 + 5 mod 8";
  EXPECT_EQ(sim.staying_nodes(), (std::vector<NodeId>{0}));
}

TEST(SimulatorRun, CausalTimeEqualsMovesPlusArrival) {
  // One continuously moving agent: ideal time = initial arrival + one per
  // move (§2.2: "the ideal time complexity is equivalent to the number of
  // moves for the agent").
  Simulator sim(10, {0}, [](AgentId) { return std::make_unique<WalkerAgent>(7); });
  RoundRobinScheduler scheduler;
  (void)sim.run(scheduler);
  EXPECT_EQ(sim.metrics().makespan(), 8u);
}

TEST(SimulatorRun, ParallelWalkersShareTheClock) {
  // k walkers moving in lockstep: makespan must not grow with k.
  Simulator sim(12, {0, 4, 8},
                [](AgentId) { return std::make_unique<WalkerAgent>(6); });
  SynchronousScheduler scheduler;
  (void)sim.run(scheduler);
  EXPECT_EQ(sim.metrics().makespan(), 7u);
  EXPECT_EQ(sim.metrics().total_moves(), 18u);
}

TEST(SimulatorRun, ActionLimitStopsLivelocks) {
  SimOptions options;
  options.max_actions = 50;
  Simulator sim(4, {0}, [](AgentId) { return std::make_unique<EndlessWalkerAgent>(); },
                options);
  RoundRobinScheduler scheduler;
  const RunResult result = sim.run(scheduler);
  EXPECT_EQ(result.outcome, RunResult::Outcome::ActionLimit);
  EXPECT_EQ(result.actions, 50u);
}

TEST(HomeFirstRule, VisitorQueuesBehindTheHomeAgent) {
  // Agent 1 walks through agent 0's home. Even if the scheduler refuses to
  // run agent 0 (priority: agent 1 first), the FIFO initial buffer forces
  // agent 0's first action (at its home) before agent 1 can arrive there.
  SimOptions options;
  options.record_events = true;
  Simulator sim(
      6, {3, 1},
      [](AgentId id) -> std::unique_ptr<AgentProgram> {
        if (id == 0) return std::make_unique<WalkerAgent>(0, /*drop_token=*/true);
        return std::make_unique<WalkerAgent>(4);
      },
      options);
  PriorityScheduler scheduler({1, 0});  // starve agent 0
  (void)sim.run(scheduler);

  const auto arrivals = sim.log().of_kind(EventKind::Arrive);
  const auto at_node3 = [&] {
    std::vector<Event> out;
    for (const Event& e : arrivals) {
      if (e.node == 3) out.push_back(e);
    }
    return out;
  }();
  ASSERT_EQ(at_node3.size(), 2u);
  EXPECT_EQ(at_node3[0].agent, 0u) << "home agent must act at its home first";
  EXPECT_EQ(at_node3[1].agent, 1u);
}

TEST(HomeFirstRule, TokenIsVisibleToTheFirstVisitor) {
  // Because of the home-first rule, a visitor can never see a home node
  // without its token: agent 1 probes every node it passes.
  Simulator sim(6, {3, 1}, [](AgentId id) -> std::unique_ptr<AgentProgram> {
    if (id == 0) return std::make_unique<WalkerAgent>(0, /*drop_token=*/true);
    return std::make_unique<ProberAgent>(5);
  });
  PriorityScheduler scheduler({1, 0});
  (void)sim.run(scheduler);

  const auto& prober = dynamic_cast<const ProberAgent&>(sim.program(1));
  // Prober starts at node 1, then visits 2,3,4,5,0. Node 3 is observation
  // index 2 and must carry the token.
  ASSERT_EQ(prober.observations().size(), 6u);
  EXPECT_EQ(prober.observations()[2].tokens, 1u);
}

TEST(Fifo, ArrivalOrderMatchesDepartureOrderOnEveryLink) {
  // Two walkers on overlapping routes; under a randomized scheduler the
  // per-link arrival order must still match departure order.
  SimOptions options;
  options.record_events = true;
  Simulator sim(5, {0, 2},
                [](AgentId) { return std::make_unique<WalkerAgent>(13); }, options);
  RandomScheduler scheduler(99);
  (void)sim.run(scheduler);

  // Reconstruct per-link order: Depart at node v = enqueue on link v→v+1;
  // Arrive at node v+1 = dequeue. Sequences must match exactly.
  const std::size_t n = sim.node_count();
  std::vector<std::vector<AgentId>> departs(n), arrives(n);
  for (const Event& e : sim.log().events()) {
    if (e.kind == EventKind::Depart) departs[(e.node + 1) % n].push_back(e.agent);
    if (e.kind == EventKind::Arrive) arrives[e.node].push_back(e.agent);
  }
  for (std::size_t v = 0; v < n; ++v) {
    // The initial buffer contributes one arrival without a departure.
    std::vector<AgentId> expected;
    for (AgentId id = 0; id < sim.agent_count(); ++id) {
      if (sim.homes()[id] == v) expected.push_back(id);
    }
    expected.insert(expected.end(), departs[v].begin(), departs[v].end());
    EXPECT_EQ(arrives[v], expected) << "FIFO violated on link into node " << v;
  }
}

TEST(Messaging, BroadcastReachesOnlyStayingAgents) {
  // Collector sits at node 2 (in the messenger's path); a second walker is
  // in transit somewhere. Only the collector may receive.
  Simulator sim(6, {0, 2, 4}, [](AgentId id) -> std::unique_ptr<AgentProgram> {
    if (id == 0) return std::make_unique<MessengerAgent>(2, "hello");
    if (id == 1) return std::make_unique<CollectorAgent>(1);
    return std::make_unique<WalkerAgent>(6);
  });
  RoundRobinScheduler scheduler;
  const RunResult result = sim.run(scheduler);
  EXPECT_TRUE(result.quiescent());
  const auto& collector = dynamic_cast<const CollectorAgent&>(sim.program(1));
  ASSERT_EQ(collector.received().size(), 1u);
  EXPECT_EQ(collector.received()[0], "hello");
}

TEST(Messaging, AllPendingMessagesDeliverInOneAction) {
  // Two messengers drop a message at node 3 before the suspended agent is
  // scheduled; the model delivers both in a single action.
  Simulator sim(8, {1, 2, 3}, [](AgentId id) -> std::unique_ptr<AgentProgram> {
    if (id == 0) return std::make_unique<MessengerAgent>(2, "a");
    if (id == 1) return std::make_unique<MessengerAgent>(1, "b");
    return std::make_unique<SuspenderAgent>();
  });
  // Priority: run both messengers to completion before the suspender acts.
  PriorityScheduler scheduler({0, 1, 2});
  (void)sim.run(scheduler);
  const auto& suspender = dynamic_cast<const SuspenderAgent&>(sim.program(2));
  ASSERT_EQ(suspender.wakeups().size(), 1u)
      << "both messages must arrive in one atomic action";
  EXPECT_EQ(suspender.wakeups()[0], 2u);
}

TEST(Messaging, HaltedAgentsIgnoreMessages) {
  // Definition 1: a halted agent neither changes state nor wakes.
  Simulator sim(6, {0, 2}, [](AgentId id) -> std::unique_ptr<AgentProgram> {
    if (id == 0) return std::make_unique<SitterAgent>(0);  // halts immediately
    return std::make_unique<MessengerAgent>(4, "ping");    // 2 + 4 = node 0
  });
  RoundRobinScheduler scheduler;
  const RunResult result = sim.run(scheduler);
  EXPECT_TRUE(result.quiescent());
  EXPECT_EQ(sim.status(0), AgentStatus::Halted);
  EXPECT_EQ(sim.snapshot().agents[0].mailbox_size, 0u)
      << "messages to halted agents are dropped";
}

TEST(Messaging, SuspendedAgentWakesOnMessage) {
  Simulator sim(6, {0, 3}, [](AgentId id) -> std::unique_ptr<AgentProgram> {
    if (id == 0) return std::make_unique<SuspenderAgent>();
    return std::make_unique<MessengerAgent>(3, "wake");  // 3 + 3 = node 0
  });
  RoundRobinScheduler scheduler;
  const RunResult result = sim.run(scheduler);
  EXPECT_TRUE(result.quiescent());
  const auto& suspender = dynamic_cast<const SuspenderAgent&>(sim.program(0));
  EXPECT_EQ(suspender.wakeups().size(), 1u);
  EXPECT_EQ(sim.status(0), AgentStatus::Suspended);
}

TEST(Messaging, WakeTimestampFollowsSender) {
  // The woken agent's next action must be causally after the sender's
  // broadcast action.
  Simulator sim(6, {0, 3}, [](AgentId id) -> std::unique_ptr<AgentProgram> {
    if (id == 0) return std::make_unique<SuspenderAgent>();
    return std::make_unique<MessengerAgent>(3, "wake");
  });
  RoundRobinScheduler scheduler;
  (void)sim.run(scheduler);
  // Messenger: arrival(home)=1 + 3 moves → broadcast at ts 4. Suspender's
  // wakeup action: max(own prev=1, 4) + 1 = 5.
  EXPECT_EQ(sim.metrics().agent(1).causal_time, 4u);
  EXPECT_EQ(sim.metrics().agent(0).causal_time, 5u);
}

TEST(Observation, InTransitAgentsAreInvisible) {
  // A prober passes a node whose queue holds a never-scheduled agent: it
  // must see no one (agents in q_i are not in p_i).
  Simulator sim(6, {0, 3}, [](AgentId id) -> std::unique_ptr<AgentProgram> {
    if (id == 0) return std::make_unique<ProberAgent>(5);
    return std::make_unique<SitterAgent>(2);
  });
  // Never run agent 1: it stays in transit inside node 3's queue... except
  // the prober queues behind it at node 3 and forces it through. Its first
  // action makes it Staying, so the prober *does* see it at node 3. Probe
  // nodes 1, 2, 4, 5 instead: nobody there.
  PriorityScheduler scheduler({0, 1});
  (void)sim.run(scheduler);
  const auto& prober = dynamic_cast<const ProberAgent&>(sim.program(0));
  ASSERT_EQ(prober.observations().size(), 6u);
  EXPECT_EQ(prober.observations()[1].others, 0u);  // node 1
  EXPECT_EQ(prober.observations()[2].others, 0u);  // node 2
  EXPECT_EQ(prober.observations()[3].others, 1u);  // node 3: sitter (forced through)
  EXPECT_EQ(prober.observations()[4].others, 0u);  // node 4
}

TEST(Quiescence, WaitingWithoutMessagesIsQuiescentButNotSuspended) {
  Simulator sim(4, {0}, [](AgentId) { return std::make_unique<CollectorAgent>(1); });
  RoundRobinScheduler scheduler;
  const RunResult result = sim.run(scheduler);
  EXPECT_TRUE(result.quiescent()) << "communication deadlock still quiesces";
  EXPECT_FALSE(sim.all_halted());
  EXPECT_FALSE(sim.all_suspended());
  EXPECT_EQ(sim.status(0), AgentStatus::Waiting);
}

TEST(Quiescence, StepAgentRejectsDisabledAgents) {
  Simulator sim(4, {0, 2}, [](AgentId) { return std::make_unique<SitterAgent>(1); });
  EXPECT_TRUE(sim.step_agent(0));
  // Agent 0 now stayed once; agent 1 still in transit (enabled).
  EXPECT_TRUE(sim.step_agent(1));
  RoundRobinScheduler scheduler;
  (void)sim.run(scheduler);
  EXPECT_TRUE(sim.all_halted());
  EXPECT_FALSE(sim.step_agent(0)) << "halted agents are never enabled";
  EXPECT_FALSE(sim.step_agent(7)) << "unknown ids are rejected";
}

TEST(Determinism, SameSeedSameExecution) {
  const auto run_once = [](std::uint64_t seed) {
    Simulator sim(16, {0, 3, 7, 12},
                  [](AgentId) { return std::make_unique<WalkerAgent>(20); });
    RandomScheduler scheduler(seed);
    (void)sim.run(scheduler);
    return std::make_tuple(sim.metrics().total_moves(), sim.metrics().makespan(),
                           sim.staying_nodes());
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_EQ(run_once(123), run_once(123));
}

TEST(Errors, AgentExceptionPropagates) {
  Simulator sim(4, {1}, [](AgentId) { return std::make_unique<ThrowerAgent>(); });
  RoundRobinScheduler scheduler;
  EXPECT_THROW((void)sim.run(scheduler), std::runtime_error);
}

TEST(Invariants, HoldAfterEveryStepOfARandomRun) {
  Simulator sim(10, {0, 2, 5, 8},
                [](AgentId) { return std::make_unique<WalkerAgent>(15, true); });
  RandomScheduler scheduler(2718);
  scheduler.reset(sim.agent_count());
  std::size_t tokens_so_far = 0;
  while (sim.step(scheduler)) {
    tokens_so_far = std::max(tokens_so_far, sim.total_tokens());
    const CheckResult invariants = check_model_invariants(sim, tokens_so_far);
    ASSERT_TRUE(invariants.ok) << invariants.reason;
  }
  EXPECT_EQ(sim.total_tokens(), 4u);
}

TEST(Snapshot, ReflectsConfiguration) {
  Simulator sim(5, {0, 2}, [](AgentId id) -> std::unique_ptr<AgentProgram> {
    if (id == 0) return std::make_unique<WalkerAgent>(1, true);
    return std::make_unique<SitterAgent>(0);
  });
  RoundRobinScheduler scheduler;
  (void)sim.run(scheduler);
  const Snapshot snap = sim.snapshot();
  EXPECT_EQ(snap.node_count, 5u);
  EXPECT_EQ(snap.tokens, (std::vector<std::size_t>{1, 0, 0, 0, 0}));
  ASSERT_EQ(snap.agents.size(), 2u);
  EXPECT_EQ(snap.agents[0].node, 1u);
  EXPECT_EQ(snap.agents[0].status, AgentStatus::Halted);
  EXPECT_EQ(snap.agents[1].node, 2u);
  for (const auto& queue : snap.queues) EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace udring::sim
