// Oracle-sensitivity (mutation) tests: the Definition-1/2 checkers must
// *fail* deliberately broken algorithm variants. A test suite whose oracle
// passes everything proves nothing; each mutant here models a realistic
// implementation bug, and the matching oracle has to catch it.

#include <gtest/gtest.h>

#include <memory>

#include "core/distance_sequence.h"
#include "core/targets.h"
#include "sim/checker.h"
#include "sim/scheduler.h"
#include "sim/simulator.h"

namespace udring::core {
namespace {

// ---- mutants of Algorithm 1 ---------------------------------------------------

/// Base: a faithful Algorithm 1 whose deployment distance is produced by a
/// (possibly broken) policy hook.
class MutantAlgo1 : public sim::AgentProgram {
 public:
  explicit MutantAlgo1(std::size_t k) : k_(k) {}

  sim::Behavior run(sim::AgentContext& ctx) override {
    if (drop_token()) ctx.release_token();
    for (std::size_t j = 0; j < k_; ++j) {
      std::size_t dis = 0;
      do {
        co_await ctx.move();
        ++dis;
      } while (ctx.tokens_here() == 0);
      d_.push_back(dis);
    }
    const std::size_t total = deployment_distance();
    for (std::size_t i = 0; i < total; ++i) {
      co_await ctx.move();
    }
    co_return;
  }

  [[nodiscard]] std::string_view name() const override { return "mutant-algo1"; }

 protected:
  [[nodiscard]] virtual bool drop_token() const { return true; }

  /// Faithful policy; mutants override.
  [[nodiscard]] virtual std::size_t deployment_distance() const {
    const std::size_t rank = min_rotation(d_);
    std::size_t dis_base = 0;
    for (std::size_t i = 0; i < rank; ++i) dis_base += d_[i];
    const TargetPlan plan =
        make_target_plan(sum(d_), k_, symmetry_degree(d_));
    return dis_base + plan.offset(rank);
  }

  std::size_t k_;
  DistanceSeq d_;
};

/// Bug: clamped rank (a saturating decrement) — two agents compute the same
/// target offset and collide. (A pure cyclic shift of all ranks would still
/// be uniform; the bug must break the bijection, not rotate it.)
class RankCollisionMutant final : public MutantAlgo1 {
 public:
  using MutantAlgo1::MutantAlgo1;

 protected:
  std::size_t deployment_distance() const override {
    const std::size_t rank = min_rotation(d_);
    const std::size_t buggy_rank = rank > 0 ? rank - 1 : 0;  // 0 and 1 collide
    std::size_t dis_base = 0;
    for (std::size_t i = 0; i < rank; ++i) dis_base += d_[i];
    const TargetPlan plan = make_target_plan(sum(d_), k_, symmetry_degree(d_));
    return dis_base + plan.offset(buggy_rank);
  }
};

/// Bug: stops one node short of the target.
class OneShortMutant final : public MutantAlgo1 {
 public:
  using MutantAlgo1::MutantAlgo1;

 protected:
  std::size_t deployment_distance() const override {
    const std::size_t faithful = MutantAlgo1::deployment_distance();
    return faithful == 0 ? 0 : faithful - 1;
  }
};

/// Bug: every agent treats *itself* as the base (forgets the rotation
/// agreement entirely) — the deployment degenerates to "stay home", which
/// keeps whatever irregular spacing the start had. (Note a *consistent*
/// wrong choice — e.g. everyone using the max rotation — would still be
/// uniform; the dangerous bug is the one that destroys agreement.)
class SelfishBaseMutant final : public MutantAlgo1 {
 public:
  using MutantAlgo1::MutantAlgo1;

 protected:
  std::size_t deployment_distance() const override {
    return 0;  // "I am rank 0 at my own base node."
  }
};

/// Bug: forgets to drop the token (poisons *everyone's* measurement).
class NoTokenMutant final : public MutantAlgo1 {
 public:
  using MutantAlgo1::MutantAlgo1;

 protected:
  bool drop_token() const override { return false; }
};

/// Bug: never halts — walks forever after deployment (livelock).
class NeverHaltsMutant final : public sim::AgentProgram {
 public:
  sim::Behavior run(sim::AgentContext& ctx) override {
    ctx.release_token();
    for (;;) {
      co_await ctx.move();
    }
  }
  [[nodiscard]] std::string_view name() const override { return "never-halts"; }
};

template <typename Mutant>
sim::ProgramFactory mutant_factory(std::size_t k) {
  return [k](sim::AgentId) { return std::make_unique<Mutant>(k); };
}

struct Outcome {
  bool quiescent;
  bool uniform;
};

template <typename Mutant>
Outcome run_mutant(std::size_t n, std::vector<std::size_t> homes) {
  sim::SimOptions options;
  options.max_actions = 64 * n * homes.size() + 4096;
  sim::Simulator simulator(n, std::move(homes), mutant_factory<Mutant>(4),
                           options);
  sim::RoundRobinScheduler scheduler;
  const auto result = simulator.run(scheduler);
  return {result.quiescent(),
          sim::UniformDeploymentOracle(true).check_goal(simulator).ok};
}

constexpr std::size_t kN = 16;
const std::vector<std::size_t> kHomes = {0, 1, 5, 7};

TEST(OracleSensitivity, FaithfulBaselinePasses) {
  const Outcome outcome = run_mutant<MutantAlgo1>(kN, kHomes);
  EXPECT_TRUE(outcome.quiescent);
  EXPECT_TRUE(outcome.uniform) << "the un-mutated control must pass";
}

TEST(OracleSensitivity, RankCollisionIsCaught) {
  const Outcome outcome = run_mutant<RankCollisionMutant>(kN, kHomes);
  EXPECT_TRUE(outcome.quiescent);
  EXPECT_FALSE(outcome.uniform) << "two agents share a target";
}

TEST(OracleSensitivity, StoppingOneShortIsCaught) {
  const Outcome outcome = run_mutant<OneShortMutant>(kN, kHomes);
  EXPECT_TRUE(outcome.quiescent);
  EXPECT_FALSE(outcome.uniform) << "every gap shifts off the ⌊n/k⌋/⌈n/k⌉ grid";
}

TEST(OracleSensitivity, SelfishBaseIsCaught) {
  const Outcome outcome = run_mutant<SelfishBaseMutant>(kN, kHomes);
  EXPECT_TRUE(outcome.quiescent);
  EXPECT_FALSE(outcome.uniform)
      << "staying home keeps the irregular start spacing";
}

TEST(OracleSensitivity, MissingTokenIsCaught) {
  // Without tokens the "move to next token node" walk spins until the
  // action limit: the run must NOT quiesce (and must not pass).
  const Outcome outcome = run_mutant<NoTokenMutant>(kN, kHomes);
  EXPECT_FALSE(outcome.quiescent && outcome.uniform);
}

TEST(OracleSensitivity, LivelockIsReportedAsActionLimit) {
  sim::SimOptions options;
  options.max_actions = 5000;
  sim::Simulator simulator(
      kN, kHomes, [](sim::AgentId) { return std::make_unique<NeverHaltsMutant>(); },
      options);
  sim::RoundRobinScheduler scheduler;
  const auto result = simulator.run(scheduler);
  EXPECT_EQ(result.outcome, sim::RunResult::Outcome::ActionLimit);
  EXPECT_FALSE(sim::UniformDeploymentOracle(true).check_goal(simulator).ok);
}

TEST(OracleSensitivity, SuspendedIsNotHalted) {
  // An algorithm that parks in the Definition-2 state must fail the
  // Definition-1 oracle even at perfect positions — and vice versa. (The
  // distinction is the whole content of Theorem 5.)
  class SuspendAtTarget final : public sim::AgentProgram {
   public:
    sim::Behavior run(sim::AgentContext& ctx) override {
      ctx.release_token();
      for (int i = 0; i < 8; ++i) {
        co_await ctx.move();
      }
      co_await ctx.suspend();
      co_return;
    }
    [[nodiscard]] std::string_view name() const override { return "suspender"; }
  };
  sim::Simulator simulator(16, {0, 8}, [](sim::AgentId) {
    return std::make_unique<SuspendAtTarget>();
  });
  sim::RoundRobinScheduler scheduler;
  (void)simulator.run(scheduler);
  EXPECT_FALSE(sim::UniformDeploymentOracle(true).check_goal(simulator).ok);
  EXPECT_TRUE(sim::UniformDeploymentOracle(false).check_goal(simulator).ok);
}

}  // namespace
}  // namespace udring::core
