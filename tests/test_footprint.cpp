// Tests for sim/footprint.h — the shared conservative {node, next(node)}
// action footprint. Three pruners (mc:: sleep sets, DPOR re-arming, the
// incremental checker's dirty set) and the lane-batched stepper all consume
// this one definition; these tests pin its two load-bearing properties:
// overlaps() is a sound symmetric intersection test (including the 1-node
// self-loop where node == next), and independent_actions() implies the two
// actions commute — executing them in either order reaches the same
// configuration.

#include "sim/footprint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/runner.h"

namespace udring::sim {
namespace {

TEST(ActionFootprint, OverlapsIsExactPairIntersection) {
  const ActionFootprint a{0, 1};
  EXPECT_TRUE(a.overlaps({0, 1}));   // identical
  EXPECT_TRUE(a.overlaps({1, 2}));   // shares a.next
  EXPECT_TRUE(a.overlaps({7, 0}));   // shares a.node as next
  EXPECT_FALSE(a.overlaps({2, 3}));  // disjoint
  EXPECT_FALSE(a.overlaps({5, 6}));
}

TEST(ActionFootprint, SelfLoopFootprintNeedsNoDeduplication) {
  // On a 1-node walk node == next; overlaps() must treat {v, v} as the
  // singleton {v} without callers canonicalizing first.
  const ActionFootprint loop{3, 3};
  EXPECT_TRUE(loop.overlaps({3, 3}));
  EXPECT_TRUE(loop.overlaps({2, 3}));
  EXPECT_TRUE(loop.overlaps({3, 4}));
  EXPECT_FALSE(loop.overlaps({4, 5}));
}

TEST(ActionFootprint, OverlapsIsSymmetric) {
  const std::vector<ActionFootprint> sample = {
      {0, 1}, {1, 2}, {3, 3}, {7, 0}, {4, 5}};
  for (const ActionFootprint& a : sample) {
    for (const ActionFootprint& b : sample) {
      EXPECT_EQ(a.overlaps(b), b.overlaps(a))
          << "{" << a.node << "," << a.next << "} vs {" << b.node << ","
          << b.next << "}";
    }
  }
}

core::RunSpec ring_spec(std::size_t node_count, std::vector<std::size_t> homes) {
  core::RunSpec spec;
  spec.node_count = node_count;
  spec.homes = std::move(homes);
  return spec;
}

TEST(ActionFootprint, InitialFootprintIsHomeAndSuccessor) {
  const sim::Instance instance = core::make_instance(
      core::Algorithm::KnownKFull, ring_spec(8, {0, 4, 7}));
  ExecutionState state;
  state.reset(instance);

  EXPECT_EQ(action_footprint(state, 0).node, 0u);
  EXPECT_EQ(action_footprint(state, 0).next, 1u);
  EXPECT_EQ(action_footprint(state, 1).node, 4u);
  EXPECT_EQ(action_footprint(state, 1).next, 5u);
  // The ring wraps: home 7's successor is node 0.
  EXPECT_EQ(action_footprint(state, 2).node, 7u);
  EXPECT_EQ(action_footprint(state, 2).next, 0u);

  // Far-apart agents are independent; the wrap makes agents 0 and 2
  // dependent (footprints {0,1} and {7,0} share node 0).
  EXPECT_TRUE(independent_actions(state, 0, 1));
  EXPECT_FALSE(independent_actions(state, 0, 2));
}

TEST(ActionFootprint, AdjacentAgentsAreDependent) {
  const sim::Instance instance =
      core::make_instance(core::Algorithm::KnownKFull, ring_spec(8, {0, 1}));
  ExecutionState state;
  state.reset(instance);
  // Footprints {0,1} and {1,2} share node 1: a move by agent 0 lands in the
  // link queue agent 1's action drains, so the pair must not be declared
  // independent.
  EXPECT_FALSE(independent_actions(state, 0, 1));
}

TEST(ActionFootprint, IndependentActionsCommute) {
  // The property every consumer relies on: when independent_actions says
  // yes, executing the two actions in either order reaches the same
  // configuration (config_digest is order-insensitive only through genuine
  // commutation — it hashes the full C = (S, T, M, P, Q)).
  const core::RunSpec spec = ring_spec(16, {0, 8});
  const sim::Instance instance =
      core::make_instance(core::Algorithm::KnownKFull, spec);

  ExecutionState ab;
  ab.reset(instance);
  ASSERT_EQ(ab.enabled().size(), 2u);
  ASSERT_TRUE(independent_actions(ab, 0, 1));
  ab.step_chosen(0);
  ab.step_chosen(1);

  ExecutionState ba;
  ba.reset(instance);
  ba.step_chosen(1);
  ba.step_chosen(0);

  EXPECT_EQ(ab.config_digest(), ba.config_digest());

  // And the footprint taken before the action bounds the nodes the action
  // actually touched (the post-hoc narrowing the incremental checker uses).
  ExecutionState probe;
  probe.reset(instance);
  const ActionFootprint before = action_footprint(probe, 0);
  probe.step_chosen(0);
  for (const NodeId touched : probe.last_action_nodes()) {
    EXPECT_TRUE(touched == before.node || touched == before.next)
        << "action touched node " << touched << " outside footprint {"
        << before.node << "," << before.next << "}";
  }
}

}  // namespace
}  // namespace udring::sim
