// Tests for durable sharded campaigns (exp/shard.h) and the mergeable
// quantile sketch under them (util/quantile_sketch.h).
//
// The claims pinned here extend the engine's determinism contract across
// process and crash boundaries:
//  - load(encode(shard)) is the identity, and corrupt bytes fail loudly;
//  - N shards merged == the single uninterrupted run, byte for byte
//    (digest AND summary), at worker counts {1, 4} × lanes {1, auto};
//  - kill-and-resume at ANY checkpoint watermark reproduces the
//    uninterrupted digest (the checkpoint_abort_after hook simulates the
//    kill with exactly the on-disk state a real one leaves);
//  - merges reject what they must: overlapping ranges, gaps, foreign
//    fingerprints, saturated sums.

#include "exp/shard.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "exp/campaign.h"
#include "util/io.h"
#include "util/quantile_sketch.h"

namespace udring::exp {
namespace {

CampaignGrid small_grid() {
  CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull,
                     core::Algorithm::UnknownRelaxed};
  grid.families = {ConfigFamily::RandomAny};
  grid.schedulers = {sim::SchedulerKind::RoundRobin,
                     sim::SchedulerKind::Random};
  grid.node_counts = {16, 24};
  grid.agent_counts = {2, 4};
  grid.seeds = 3;
  grid.base_seed = 11;
  return grid;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ---- quantile sketch --------------------------------------------------------

TEST(QuantileSketch, ExactBelow256) {
  QuantileSketch sketch;
  for (std::uint64_t v = 1; v <= 100; ++v) sketch.add(v);
  EXPECT_EQ(sketch.total(), 100u);
  EXPECT_EQ(sketch.min(), 1u);
  EXPECT_EQ(sketch.max(), 100u);
  // rank floor(q * 99) lands exactly on the order statistic: one bucket per
  // value below 256, so no interpolation error at all.
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 100.0);
}

TEST(QuantileSketch, LogBucketsBoundRelativeError) {
  QuantileSketch sketch;
  for (std::uint64_t v = 1000; v <= 100000; v += 1000) sketch.add(v);
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const double estimate = sketch.quantile(q);
    const std::uint64_t exact =
        1000 * (1 + static_cast<std::uint64_t>(q * 99.0));
    EXPECT_NEAR(estimate, static_cast<double>(exact),
                static_cast<double>(exact) / 16.0 + 1.0)
        << "q=" << q;
  }
}

TEST(QuantileSketch, MergeEqualsWholeUnderAnyPartition) {
  QuantileSketch whole, a, b, c;
  for (std::uint64_t v = 0; v < 3000; ++v) {
    const std::uint64_t value = (v * 2654435761u) % 100000;
    whole.add(value);
    (v % 3 == 0 ? a : v % 3 == 1 ? b : c).add(value);
  }
  QuantileSketch merged = c;  // deliberately out of order: merge commutes
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged, whole);
}

TEST(QuantileSketch, MergeOverflowThrowsAtTheBoundary) {
  const std::uint64_t half = std::numeric_limits<std::uint64_t>::max() / 2 + 1;
  QuantileSketch a, b;
  a.add(7, half);
  b.add(7, half - 1);
  QuantileSketch almost = a;
  almost.merge(b);  // 2^64 - 1 observations: the exact boundary, still fine
  EXPECT_EQ(almost.total(), std::numeric_limits<std::uint64_t>::max());
  QuantileSketch one;
  one.add(7, 1);
  EXPECT_THROW(almost.merge(one), std::overflow_error);
}

TEST(QuantileSketch, FromEntriesRejectsCorruptState) {
  using Entry = QuantileSketch::Entry;
  const auto reject = [](std::vector<Entry> entries, std::uint64_t lo,
                         std::uint64_t hi) {
    EXPECT_THROW(
        static_cast<void>(QuantileSketch::from_entries(std::move(entries), lo,
                                                       hi)),
        std::invalid_argument);
  };
  reject({{5, 1}, {5, 1}}, 5, 5);                          // duplicate bucket
  reject({{9, 1}, {5, 1}}, 5, 9);                          // unsorted
  reject({{QuantileSketch::kBucketCount, 1}}, 0, 0);       // out of universe
  reject({{5, 0}}, 5, 5);                                  // zero count
  reject({{5, 1}}, 6, 6);                                  // min off-bucket
  reject({}, 0, 0);  // empty needs sentinel extremes
  // The valid round-trip, for contrast.
  QuantileSketch sketch;
  sketch.add(5);
  sketch.add(300);
  const QuantileSketch rebuilt = QuantileSketch::from_entries(
      sketch.entries(), sketch.min(), sketch.max());
  EXPECT_EQ(rebuilt, sketch);
}

// ---- shard file round-trip and validation -----------------------------------

TEST(ShardFile, EncodeDecodeRoundTrip) {
  const CampaignGrid grid = small_grid();
  const ShardFile shard = run_campaign_shard(grid, {.workers = 2}, 0, 2);
  const std::string bytes = encode_shard(shard);
  const ShardFile loaded = decode_shard(bytes, "roundtrip");
  EXPECT_EQ(loaded.fingerprint, shard.fingerprint);
  EXPECT_EQ(loaded.scenario_total, shard.scenario_total);
  EXPECT_EQ(loaded.range_begin, shard.range_begin);
  EXPECT_EQ(loaded.range_end, shard.range_end);
  EXPECT_EQ(loaded.aggregate.scenario_hash, shard.aggregate.scenario_hash);
  EXPECT_EQ(loaded.aggregate.failures, shard.aggregate.failures);
  EXPECT_EQ(loaded.aggregate.failure_samples, shard.aggregate.failure_samples);
  ASSERT_EQ(loaded.aggregate.cells.size(), shard.aggregate.cells.size());
  auto expected = shard.aggregate.cells.begin();
  for (const auto& [key, stats] : loaded.aggregate.cells) {
    EXPECT_EQ(key, expected->first);
    EXPECT_EQ(stats.moves_sum, expected->second.moves_sum);
    EXPECT_EQ(stats.moves_sketch, expected->second.moves_sketch);
    EXPECT_EQ(stats.makespan_sketch, expected->second.makespan_sketch);
    ++expected;
  }
  // And the encoding is canonical: re-encoding the decoded shard is
  // byte-identical.
  EXPECT_EQ(encode_shard(loaded), bytes);
}

TEST(ShardFile, DecodeRejectsCorruptBytes) {
  const CampaignGrid grid = small_grid();
  const std::string bytes =
      encode_shard(run_campaign_shard(grid, {.workers = 1}, 0, 1));

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(static_cast<void>(decode_shard(bad_magic, "bad-magic")),
               std::runtime_error);

  std::string bad_version = bytes;
  bad_version[4] = 99;
  EXPECT_THROW(static_cast<void>(decode_shard(bad_version, "bad-version")),
               std::runtime_error);

  EXPECT_THROW(static_cast<void>(decode_shard(
                   std::string_view(bytes).substr(0, bytes.size() / 2),
                   "truncated")),
               std::runtime_error);

  EXPECT_THROW(static_cast<void>(decode_shard(bytes + "trailing", "trailing")),
               std::runtime_error);

  EXPECT_THROW(static_cast<void>(decode_shard("", "empty")),
               std::runtime_error);
}

TEST(ShardFile, WriteAndLoadFile) {
  const std::string path = temp_path("shard_io.bin");
  const ShardFile shard =
      run_campaign_shard(small_grid(), {.workers = 1}, 1, 3);
  write_shard_file(path, shard);
  const ShardFile loaded = load_shard_file(path);
  EXPECT_EQ(encode_shard(loaded), encode_shard(shard));
  std::remove(path.c_str());
  EXPECT_THROW(static_cast<void>(load_shard_file(path)), std::runtime_error);
}

// ---- shard × merge == whole -------------------------------------------------

TEST(ShardMerge, ThreeShardsMergeToTheWholeAcrossWorkersAndLanes) {
  const CampaignGrid grid = small_grid();
  const CampaignResult reference = run_campaign_streaming(grid, {.workers = 1});
  ASSERT_GT(reference.scenario_count, 0u);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{0}}) {
      CampaignOptions options;
      options.workers = workers;
      options.batch_lanes = lanes;
      std::vector<ShardFile> shards;
      for (std::size_t i = 0; i < 3; ++i) {
        shards.push_back(run_campaign_shard(grid, options, i, 3));
      }
      // Shards tile [0, S) exactly.
      EXPECT_EQ(shards.front().range_begin, 0u);
      EXPECT_EQ(shards.back().range_end, shards.back().scenario_total);
      const CampaignResult merged = merge_shards(std::move(shards));
      EXPECT_EQ(merged.digest(), reference.digest())
          << "workers=" << workers << " lanes=" << lanes;
      EXPECT_EQ(merged.scenario_count, reference.scenario_count);
      EXPECT_EQ(merged.scenario_hash, reference.scenario_hash);
    }
  }
}

TEST(ShardMerge, FailureSamplesSelectLowestIndicesAcrossShards) {
  // Fail every scenario; the merged global samples must be the lowest
  // scenario indices of the WHOLE sweep regardless of which shard ran them.
  CampaignGrid grid = small_grid();
  grid.sim_options.max_actions = 1;
  CampaignOptions options;
  options.workers = 2;
  options.max_recorded_failures = 5;
  options.max_failures_per_cell = 2;
  const CampaignResult reference = run_campaign_streaming(grid, options);
  std::vector<ShardFile> shards;
  for (std::size_t i = 0; i < 4; ++i) {
    shards.push_back(run_campaign_shard(grid, options, i, 4));
  }
  const CampaignResult merged = merge_shards(std::move(shards));
  EXPECT_EQ(merged.failures, reference.failures);
  EXPECT_EQ(merged.failure_samples, reference.failure_samples);
  EXPECT_EQ(merged.digest(), reference.digest());
}

TEST(ShardMerge, RejectsOverlappingRanges) {
  const CampaignGrid grid = small_grid();
  std::vector<ShardFile> shards;
  shards.push_back(run_campaign_shard(grid, {}, 0, 2));
  shards.push_back(run_campaign_shard(grid, {}, 1, 2));
  shards.push_back(run_campaign_shard(grid, {}, 1, 2));  // double-submitted
  try {
    static_cast<void>(merge_shards(std::move(shards)));
    FAIL() << "overlapping shards must not merge";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("overlap"), std::string::npos)
        << error.what();
  }
}

TEST(ShardMerge, RejectsGapsUnlessPartialAllowed) {
  const CampaignGrid grid = small_grid();
  std::vector<ShardFile> shards;
  shards.push_back(run_campaign_shard(grid, {}, 0, 3));
  shards.push_back(run_campaign_shard(grid, {}, 2, 3));  // shard 1 missing
  std::vector<ShardFile> copy;
  for (const ShardFile& shard : shards) {
    copy.push_back(decode_shard(encode_shard(shard)));
  }
  EXPECT_THROW(static_cast<void>(merge_shards(std::move(copy))),
               std::runtime_error);
  const CampaignResult partial =
      merge_shards(std::move(shards), /*allow_partial=*/true);
  EXPECT_EQ(partial.scenario_count,
            expansion_size(grid) - expansion_size(grid) / 3);
}

TEST(ShardMerge, RejectsForeignFingerprint) {
  CampaignGrid grid = small_grid();
  std::vector<ShardFile> shards;
  shards.push_back(run_campaign_shard(grid, {}, 0, 2));
  grid.base_seed = 999;  // a different sweep
  shards.push_back(run_campaign_shard(grid, {}, 1, 2));
  try {
    static_cast<void>(merge_shards(std::move(shards)));
    FAIL() << "foreign shards must not merge";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("fingerprint"), std::string::npos)
        << error.what();
  }
}

TEST(ShardMerge, RejectsEmptyInput) {
  EXPECT_THROW(static_cast<void>(merge_shards({})), std::invalid_argument);
}

TEST(ShardMerge, SaturatedSumsFailLoudly) {
  // Drive moves_sum to the uint64 boundary via the public merge path: two
  // decoded shards whose sums together exceed 2^64 must throw, not wrap.
  const CampaignGrid grid = small_grid();
  ShardFile a = run_campaign_shard(grid, {}, 0, 2);
  ShardFile b = run_campaign_shard(grid, {}, 1, 2);
  ASSERT_FALSE(a.aggregate.cells.empty());
  // Same cell on both sides (the ranges cover disjoint cells, so plant the
  // colliding sum under a's first key in b too).
  const CellKey key = a.aggregate.cells.begin()->first;
  a.aggregate.cells[key].moves_sum =
      std::numeric_limits<std::uint64_t>::max() - 1;
  b.aggregate.cells[key].moves_sum = 2;  // max - 1 + 2 wraps
  std::vector<ShardFile> shards;
  shards.push_back(std::move(a));
  shards.push_back(std::move(b));
  try {
    static_cast<void>(merge_shards(std::move(shards)));
    FAIL() << "saturated merge must throw";
  } catch (const std::overflow_error& error) {
    EXPECT_NE(std::string(error.what()).find("moves_sum"), std::string::npos)
        << error.what();
  }
}

// ---- fingerprint ------------------------------------------------------------

TEST(GridFingerprint, CoversResultsNotExecutionKnobs) {
  const CampaignGrid grid = small_grid();
  const CampaignOptions options;
  const std::uint64_t base = grid_fingerprint(grid, options);

  CampaignOptions threaded = options;
  threaded.workers = 7;
  threaded.batch_lanes = 4;
  threaded.checkpoint_every_scenarios = 5;
  threaded.checkpoint_path = "somewhere.bin";
  EXPECT_EQ(grid_fingerprint(grid, threaded), base)
      << "execution knobs must not change the fingerprint";

  CampaignGrid reseeded = grid;
  reseeded.base_seed = 999;
  EXPECT_NE(grid_fingerprint(reseeded, options), base);

  CampaignGrid regridded = grid;
  regridded.node_counts.push_back(32);
  EXPECT_NE(grid_fingerprint(regridded, options), base);

  CampaignOptions recapped = options;
  recapped.max_failures_per_cell += 1;
  EXPECT_NE(grid_fingerprint(grid, recapped), base)
      << "sample caps change merged bytes, so they are in the fingerprint";
}

// ---- checkpoint / crash-resume ----------------------------------------------

TEST(Checkpoint, KillAndResumeReproducesTheUninterruptedDigest) {
  const CampaignGrid grid = small_grid();
  const CampaignResult reference = run_campaign_streaming(grid, {.workers = 2});
  const std::size_t total = expansion_size(grid);
  ASSERT_GT(total, 8u);

  // Kill at several distinct watermarks: after the 1st, 2nd and 5th
  // checkpoint write of 4-scenario blocks.
  for (const std::size_t abort_after : {std::size_t{1}, std::size_t{2},
                                        std::size_t{5}}) {
    const std::string path =
        temp_path("resume_" + std::to_string(abort_after) + ".bin");
    std::remove(path.c_str());
    CampaignOptions options;
    options.workers = 2;
    options.checkpoint_path = path;
    options.checkpoint_every_scenarios = 4;
    options.checkpoint_abort_after = abort_after;
    try {
      static_cast<void>(run_campaign_streaming(grid, options));
      FAIL() << "abort hook must fire (abort_after=" << abort_after << ")";
    } catch (const CampaignAborted& aborted) {
      EXPECT_EQ(aborted.watermark, abort_after * 4);
    }
    // The file on disk is a valid partial shard at the watermark.
    const ShardFile partial = load_shard_file(path);
    EXPECT_EQ(partial.range_end, abort_after * 4);

    // Resume: same grid, same options, hook off. Must complete from the
    // watermark and land on the uninterrupted bytes.
    options.checkpoint_abort_after = 0;
    const CampaignResult resumed = run_campaign_streaming(grid, options);
    EXPECT_EQ(resumed.digest(), reference.digest())
        << "abort_after=" << abort_after;
    EXPECT_EQ(resumed.scenario_count, reference.scenario_count);
    const ShardFile final_shard = load_shard_file(path);
    EXPECT_EQ(final_shard.range_end, final_shard.scenario_total);
    std::remove(path.c_str());
  }
}

TEST(Checkpoint, RepeatedKillsAcrossOneSweepStillConverge) {
  // Crash after EVERY block: each run makes one block of progress; the sweep
  // still finishes and matches, proving no watermark loses or repeats work.
  const CampaignGrid grid = small_grid();
  const CampaignResult reference = run_campaign_streaming(grid, {.workers = 1});
  const std::string path = temp_path("repeated_kills.bin");
  std::remove(path.c_str());
  CampaignOptions options;
  options.workers = 1;
  options.checkpoint_path = path;
  options.checkpoint_every_scenarios = 7;
  options.checkpoint_abort_after = 1;
  CampaignResult final_result;
  for (std::size_t attempt = 0; attempt < 1000; ++attempt) {
    try {
      final_result = run_campaign_streaming(grid, options);
      break;
    } catch (const CampaignAborted&) {
      continue;  // next attempt resumes from the file
    }
  }
  EXPECT_EQ(final_result.digest(), reference.digest());
  std::remove(path.c_str());
}

TEST(Checkpoint, FinalFileOnlyWhenEveryIsZero) {
  const CampaignGrid grid = small_grid();
  const std::string path = temp_path("final_only.bin");
  std::remove(path.c_str());
  CampaignOptions options;
  options.checkpoint_path = path;
  const CampaignResult result = run_campaign_streaming(grid, options);
  const ShardFile shard = load_shard_file(path);
  EXPECT_EQ(shard.range_begin, 0u);
  EXPECT_EQ(shard.range_end, shard.scenario_total);
  EXPECT_EQ(shard.scenario_total, result.scenario_count);
  // A completed checkpoint resumes to an instant no-op with the same result.
  const CampaignResult again = run_campaign_streaming(grid, options);
  EXPECT_EQ(again.digest(), result.digest());
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumingAForeignSweepThrows) {
  const CampaignGrid grid = small_grid();
  const std::string path = temp_path("foreign.bin");
  std::remove(path.c_str());
  CampaignOptions options;
  options.checkpoint_path = path;
  static_cast<void>(run_campaign_streaming(grid, options));
  CampaignGrid other = small_grid();
  other.base_seed = 12345;
  try {
    static_cast<void>(run_campaign_streaming(other, options));
    FAIL() << "resuming a different sweep's checkpoint must throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("fingerprint"), std::string::npos)
        << error.what();
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptCheckpointFailsTheResumeLoudly) {
  const CampaignGrid grid = small_grid();
  const std::string path = temp_path("corrupt.bin");
  ASSERT_TRUE(write_binary_file_atomic(path, "not a shard file at all"));
  CampaignOptions options;
  options.checkpoint_path = path;
  EXPECT_THROW(static_cast<void>(run_campaign_streaming(grid, options)),
               std::runtime_error);
  std::remove(path.c_str());
}

// ---- range primitive --------------------------------------------------------

TEST(CampaignRange, PartitionFoldsMatchTheWhole) {
  const CampaignGrid grid = small_grid();
  const CampaignOptions options{.workers = 2};
  const std::size_t total = admitted_scenario_count(grid, options);
  CampaignAccumulator whole;
  static_cast<void>(run_campaign_range(grid, options, 0, total, whole));
  // An uneven 3-way partition, folded out of order.
  CampaignAccumulator pieces;
  static_cast<void>(
      run_campaign_range(grid, options, total / 2, total, pieces));
  static_cast<void>(run_campaign_range(grid, options, 0, 1, pieces));
  static_cast<void>(run_campaign_range(grid, options, 1, total / 2, pieces));
  EXPECT_EQ(pieces.scenario_hash, whole.scenario_hash);
  EXPECT_EQ(pieces.failures, whole.failures);
  EXPECT_EQ(pieces.cells.size(), whole.cells.size());
  EXPECT_EQ(pieces.failure_samples, whole.failure_samples);
}

TEST(CampaignRange, OutOfRangeThrows) {
  const CampaignGrid grid = small_grid();
  const std::size_t total = admitted_scenario_count(grid, {});
  CampaignAccumulator acc;
  EXPECT_THROW(
      static_cast<void>(run_campaign_range(grid, {}, 0, total + 1, acc)),
      std::invalid_argument);
  EXPECT_THROW(static_cast<void>(run_campaign_range(grid, {}, 5, 4, acc)),
               std::invalid_argument);
}

}  // namespace
}  // namespace udring::exp
