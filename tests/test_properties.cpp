// Cross-algorithm property tests: invariants that must hold for *every*
// uniform-deployment algorithm in the library, run against each other on the
// same instances — plus the lower-bound sanity checks of Theorems 1 and 2 at
// test scale.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "config/generators.h"
#include "core/runner.h"
#include "sim/checker.h"
#include "util/rng.h"

namespace udring::core {
namespace {

const Algorithm kDeploymentAlgorithms[] = {
    Algorithm::KnownKFull,
    Algorithm::KnownKLogMem,
    Algorithm::KnownKLogMemStrict,
    Algorithm::UnknownRelaxed,
};

class CrossAlgorithm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossAlgorithm, AllAlgorithmsAgreeOnUniformity) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const std::size_t n = 10 + static_cast<std::size_t>(rng.below(40));
  const std::size_t k =
      2 + static_cast<std::size_t>(rng.below(std::min<std::uint64_t>(n - 1, 10)));
  RunSpec spec;
  spec.node_count = n;
  spec.homes = gen::random_homes(n, k, rng);
  spec.seed = seed;

  for (const Algorithm algorithm : kDeploymentAlgorithms) {
    const RunReport report = run_algorithm(algorithm, spec);
    ASSERT_TRUE(report.success)
        << to_string(algorithm) << " n=" << n << " k=" << k << " seed=" << seed
        << ": " << report.failure;
    // Cross-check with the position oracle directly.
    const auto check = sim::check_positions_uniform(report.final_positions, n);
    ASSERT_TRUE(check.ok) << to_string(algorithm) << ": " << check.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossAlgorithm, ::testing::Range<std::uint64_t>(1, 26));

TEST(ScheduleIndependence, GeometryDeterminedAlgorithmsLandIdentically) {
  // Algorithm 1 and the relaxed algorithm pick targets from geometry alone;
  // their final positions must not depend on the schedule. (Algorithm 2+3's
  // followers race for vacant targets, so only the gap multiset is fixed.)
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 12 + static_cast<std::size_t>(rng.below(30));
    const std::size_t k =
        2 + static_cast<std::size_t>(rng.below(std::min<std::uint64_t>(n - 1, 8)));
    const auto homes = gen::random_homes(n, k, rng);
    for (const Algorithm algorithm :
         {Algorithm::KnownKFull, Algorithm::UnknownRelaxed}) {
      std::set<std::vector<std::size_t>> outcomes;
      for (const sim::SchedulerKind kind : sim::all_scheduler_kinds()) {
        RunSpec spec;
        spec.node_count = n;
        spec.homes = homes;
        spec.scheduler = kind;
        spec.seed = 7;
        const RunReport report = run_algorithm(algorithm, spec);
        ASSERT_TRUE(report.success) << to_string(algorithm) << ": " << report.failure;
        outcomes.insert(report.final_positions);
      }
      EXPECT_EQ(outcomes.size(), 1u)
          << to_string(algorithm) << " final positions depend on the schedule "
          << "(n=" << n << " k=" << k << ")";
    }
  }
}

TEST(Tokens, EveryHomeKeepsExactlyOneToken) {
  Rng rng(5);
  for (const Algorithm algorithm : kDeploymentAlgorithms) {
    const std::size_t n = 20, k = 5;
    RunSpec spec;
    spec.node_count = n;
    spec.homes = gen::random_homes(n, k, rng);
    auto simulator = make_simulator(algorithm, spec);
    sim::RoundRobinScheduler scheduler;
    (void)simulator->run(scheduler);
    EXPECT_EQ(simulator->total_tokens(), k) << to_string(algorithm);
    for (const std::size_t home : spec.homes) {
      EXPECT_EQ(simulator->tokens(home), 1u)
          << to_string(algorithm) << " home " << home;
    }
  }
}

TEST(Metrics, PhaseMovesSumToTotalMoves) {
  Rng rng(8);
  for (const Algorithm algorithm : kDeploymentAlgorithms) {
    RunSpec spec;
    spec.node_count = 30;
    spec.homes = gen::random_homes(30, 6, rng);
    const RunReport report = run_algorithm(algorithm, spec);
    ASSERT_TRUE(report.success) << to_string(algorithm);
    std::size_t phase_total = 0;
    for (const std::size_t moves : report.moves_by_phase) phase_total += moves;
    EXPECT_EQ(phase_total, report.total_moves) << to_string(algorithm);
  }
}

TEST(ModelInvariants, HoldThroughoutEveryAlgorithmsExecution) {
  Rng rng(13);
  for (const Algorithm algorithm : kDeploymentAlgorithms) {
    RunSpec spec;
    spec.node_count = 18;
    spec.homes = gen::random_homes(18, 5, rng);
    auto simulator = make_simulator(algorithm, spec);
    sim::RandomScheduler scheduler(17);
    scheduler.reset(simulator->agent_count());
    std::size_t peak_tokens = 0;
    while (simulator->step(scheduler)) {
      peak_tokens = std::max(peak_tokens, simulator->total_tokens());
      const auto check = sim::check_model_invariants(*simulator, peak_tokens);
      ASSERT_TRUE(check.ok) << to_string(algorithm) << ": " << check.reason;
    }
  }
}

TEST(TheoremOne, PackedConfigurationForcesOmegaKnMoves) {
  // The Fig 3 witness at test scale: all agents in the first quarter arc.
  // Any correct algorithm needs ≥ kn/16 total moves (the proof's constant).
  for (const Algorithm algorithm : kDeploymentAlgorithms) {
    const std::size_t n = 32, k = 8;
    RunSpec spec;
    spec.node_count = n;
    spec.homes = gen::packed_quarter_homes(n, k);
    const RunReport report = run_algorithm(algorithm, spec);
    ASSERT_TRUE(report.success) << to_string(algorithm) << ": " << report.failure;
    EXPECT_GE(report.total_moves, k * n / 16) << to_string(algorithm);
  }
}

TEST(TheoremTwo, TimeIsAtLeastLinearInN) {
  // Ω(n) ideal time: from the packed configuration some agent must travel
  // ≥ n/4, and every algorithm here starts with a full circuit anyway.
  for (const Algorithm algorithm : kDeploymentAlgorithms) {
    const std::size_t n = 40, k = 4;
    RunSpec spec;
    spec.node_count = n;
    spec.homes = gen::packed_quarter_homes(n, k);
    spec.scheduler = sim::SchedulerKind::Synchronous;
    const RunReport report = run_algorithm(algorithm, spec);
    ASSERT_TRUE(report.success) << to_string(algorithm);
    EXPECT_GE(report.makespan, n / 4) << to_string(algorithm);
  }
}

TEST(KEqualsN, FullRingDeploysEverywhere) {
  // Degenerate but legal: one agent per node. Uniform means staying spread.
  for (const Algorithm algorithm : kDeploymentAlgorithms) {
    RunSpec spec;
    spec.node_count = 6;
    spec.homes = {0, 1, 2, 3, 4, 5};
    const RunReport report = run_algorithm(algorithm, spec);
    ASSERT_TRUE(report.success) << to_string(algorithm) << ": " << report.failure;
    EXPECT_EQ(report.final_positions.size(), 6u);
  }
}

TEST(TwoAgents, SmallestInterestingInstanceAcrossSchedulers) {
  for (const Algorithm algorithm : kDeploymentAlgorithms) {
    for (const sim::SchedulerKind kind : sim::all_scheduler_kinds()) {
      RunSpec spec;
      spec.node_count = 5;
      spec.homes = {0, 1};
      spec.scheduler = kind;
      spec.seed = 3;
      const RunReport report = run_algorithm(algorithm, spec);
      ASSERT_TRUE(report.success)
          << to_string(algorithm) << " / " << sim::to_string(kind) << ": "
          << report.failure;
      const auto gaps = sim::ring_gaps(report.final_positions, 5);
      EXPECT_EQ(std::set<std::size_t>(gaps.begin(), gaps.end()),
                (std::set<std::size_t>{2, 3}));
    }
  }
}

}  // namespace
}  // namespace udring::core
