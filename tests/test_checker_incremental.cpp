// Incremental-vs-full invariant checker equivalence.
//
// The incremental oracle (sim::IncrementalInvariantChecker) revalidates only
// the last action's {node, next(node)} footprint; the full checker re-walks
// every node and queue. On anything a single legal-or-faulted atomic action
// can produce, the two must return the SAME verdict with the SAME reason
// wording — this file fuzzes that equivalence over random schedules of the
// real algorithms, replays the whole tests/schedules/ regression corpus
// (including the planted non-FIFO double-booked-base-node violation, which
// must still be caught with its reason prefix intact) under both oracles,
// and pins the safety-net / reason-parity behaviours directly.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "config/generators.h"
#include "core/known_k_logmem.h"
#include "core/runner.h"
#include "exp/campaign.h"
#include "explore/fuzz.h"
#include "explore/trace.h"
#include "sim/checker.h"
#include "util/rng.h"

namespace udring {
namespace {

// ---- per-action equivalence along real executions ---------------------------

/// Steps `sim` to quiescence under `scheduler`, asserting after every action
/// that the incremental checker returns exactly the full checker's verdict.
void assert_equivalent_along_run(sim::Simulator& sim, sim::Scheduler& scheduler,
                                 std::size_t max_steps = 100'000) {
  sim::IncrementalInvariantChecker incremental;
  std::size_t min_tokens = sim.total_tokens();
  ASSERT_TRUE(incremental.reset(sim, min_tokens).ok);
  std::size_t steps = 0;
  while (sim.step(scheduler) && steps < max_steps) {
    const sim::CheckResult full = sim::check_model_invariants(sim, min_tokens);
    const sim::CheckResult fast = incremental.check_after_action(sim, min_tokens);
    ASSERT_EQ(full.ok, fast.ok)
        << "verdicts diverged at action " << sim.actions_executed()
        << ": full='" << full.reason << "' incremental='" << fast.reason << "'";
    ASSERT_EQ(full.reason, fast.reason);
    min_tokens = sim.total_tokens();
    ++steps;
  }
}

TEST(IncrementalChecker, EquivalentAlongRandomSchedulesOfRealAlgorithms) {
  Rng rng(2026);
  for (const core::Algorithm algorithm :
       {core::Algorithm::KnownKFull, core::Algorithm::KnownKLogMem,
        core::Algorithm::UnknownRelaxed}) {
    for (int trial = 0; trial < 5; ++trial) {
      const std::size_t k = 2 + rng.index(4);
      const std::size_t n = 12 + rng.index(30);
      core::RunSpec spec;
      spec.node_count = n;
      spec.homes = exp::draw_homes(exp::ConfigFamily::RandomAny, n, k, 1, rng);
      auto sim = core::make_simulator(algorithm, spec);
      sim::RandomScheduler scheduler(rng());
      scheduler.attach(*sim);
      scheduler.reset(k);
      assert_equivalent_along_run(*sim, scheduler);
      EXPECT_TRUE(sim->quiescent());
    }
  }
}

TEST(IncrementalChecker, EquivalentUnderNonFifoFaultQueueJumping) {
  // The fault path mutates queues by mid-queue removal; the shadow diff must
  // track it action for action.
  Rng rng(2027);
  for (int trial = 0; trial < 10; ++trial) {
    core::RunSpec spec;
    spec.node_count = gen::kLogmemStressNodes;
    spec.homes = gen::logmem_stress_homes();
    spec.sim_options.fault_non_fifo_links = true;
    spec.sim_options.fault_non_fifo_min_phase =
        core::KnownKLogMemAgent::kDeployment;
    auto sim = core::make_simulator(core::Algorithm::KnownKLogMemStrict, spec);
    sim::RandomScheduler scheduler(rng());
    scheduler.attach(*sim);
    scheduler.reset(spec.homes.size());
    assert_equivalent_along_run(*sim, scheduler);
  }
}

// ---- corpus replay under both oracles ---------------------------------------

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(UDRING_SCHEDULES_DIR)) {
    if (entry.path().extension() == ".trace") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

explore::ScheduleTrace load(const std::filesystem::path& file) {
  std::ifstream in(file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return explore::ScheduleTrace::parse(buffer.str());
}

TEST(IncrementalChecker, CorpusReplaysIdenticallyUnderBothOracles) {
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 7u);
  bool planted_violation_seen = false;
  for (const auto& file : files) {
    const explore::ScheduleTrace trace = load(file);
    const explore::ReplayOutcome full = explore::replay_trace(trace);
    const explore::ReplayOutcome fast = explore::replay_trace(
        trace, /*max_actions=*/0, /*reuse=*/nullptr,
        explore::OracleMode::Incremental);
    EXPECT_EQ(fast.failed, full.failed) << file;
    EXPECT_EQ(fast.reason, full.reason) << file;
    EXPECT_EQ(fast.digest, full.digest) << file;
    EXPECT_EQ(fast.actions, full.actions) << file;
    EXPECT_EQ(fast.digest, trace.expected_digest) << file;
    if (trace.note.rfind("goal: ", 0) == 0) {
      // The planted double-booked-base-node violation: both oracles must
      // keep catching it with the exact reason prefix the corpus recorded.
      planted_violation_seen = true;
      EXPECT_TRUE(fast.failed) << file;
      EXPECT_EQ(fast.reason.rfind("goal: two agents share node", 0), 0u)
          << file << ": " << fast.reason;
    }
  }
  EXPECT_TRUE(planted_violation_seen)
      << "corpus no longer contains the planted base-node violation";
}

TEST(IncrementalChecker, FaultedFuzzReportIsOracleModeInvariant) {
  // The seeded-bug hunt (test_explore's acceptance instance): same
  // iterations, same seeds, only the oracle differs — the report digest,
  // failure count and first reason must be identical, and the violation's
  // reason prefix unchanged.
  explore::FuzzOptions options;
  options.algorithm = core::Algorithm::KnownKLogMemStrict;
  options.fault_non_fifo = true;
  options.fault_min_phase = core::KnownKLogMemAgent::kDeployment;
  options.fixed_nodes = gen::kLogmemStressNodes;
  options.fixed_homes = gen::logmem_stress_homes();
  options.schedulers = {explore::ExploreSchedulerKind::LinkDelay};
  options.iterations = 20;
  options.base_seed = 2024;

  const explore::FuzzReport full = explore::run_fuzz(options);
  options.oracle = explore::OracleMode::Incremental;
  const explore::FuzzReport fast = explore::run_fuzz(options);

  EXPECT_GT(full.failures, 0u) << "seeded bug not found within the budget";
  EXPECT_EQ(fast.failures, full.failures);
  EXPECT_EQ(fast.digest, full.digest);
  EXPECT_EQ(fast.total_actions, full.total_actions);
  ASSERT_FALSE(fast.failure_samples.empty());
  EXPECT_EQ(fast.failure_samples.front().reason,
            full.failure_samples.front().reason);
  EXPECT_EQ(fast.failure_samples.front().reason.rfind(
                "goal: two agents share node", 0),
            0u)
      << fast.failure_samples.front().reason;
}

// ---- direct behaviours ------------------------------------------------------

TEST(IncrementalChecker, TokenDecreaseFailsWithSameReasonPrefix) {
  Rng rng(31);
  core::RunSpec spec;
  spec.node_count = 16;
  spec.homes = exp::draw_homes(exp::ConfigFamily::RandomAny, 16, 3, 1, rng);
  auto sim = core::make_simulator(core::Algorithm::KnownKFull, spec);

  sim::IncrementalInvariantChecker checker;
  // A fresh run has zero tokens; claiming 5 must trip monotonicity in both
  // the adopting reset and the per-action check, with the full checker's
  // exact wording.
  const sim::CheckResult at_reset = checker.reset(*sim, 5);
  EXPECT_FALSE(at_reset.ok);
  EXPECT_EQ(at_reset.reason.rfind("token count decreased", 0), 0u)
      << at_reset.reason;
  EXPECT_EQ(at_reset.reason, sim::check_model_invariants(*sim, 5).reason);

  ASSERT_TRUE(checker.reset(*sim, 0).ok);
  sim::RoundRobinScheduler scheduler;
  scheduler.attach(*sim);
  scheduler.reset(3);
  ASSERT_TRUE(sim->step(scheduler));
  const sim::CheckResult after = checker.check_after_action(*sim, 5);
  EXPECT_FALSE(after.ok);
  EXPECT_EQ(after.reason, sim::check_model_invariants(*sim, 5).reason);
}

TEST(IncrementalChecker, PeriodicFullCheckRunsOnSchedule) {
  Rng rng(32);
  core::RunSpec spec;
  spec.node_count = 24;
  spec.homes = exp::draw_homes(exp::ConfigFamily::RandomAny, 24, 4, 1, rng);
  auto sim = core::make_simulator(core::Algorithm::KnownKFull, spec);

  sim::IncrementalInvariantChecker checker(
      sim::IncrementalInvariantChecker::Options{.full_check_every = 4});
  ASSERT_TRUE(checker.reset(*sim, 0).ok);
  sim::RoundRobinScheduler scheduler;
  scheduler.attach(*sim);
  scheduler.reset(4);
  std::size_t actions = 0;
  while (actions < 22 && sim->step(scheduler)) {
    ASSERT_TRUE(checker.check_after_action(*sim, 0).ok);
    ++actions;
  }
  ASSERT_EQ(actions, 22u);
  EXPECT_EQ(checker.full_checks(), 22u / 4u);

  // full_check_every = 0 disables the net entirely.
  sim::IncrementalInvariantChecker pure(
      sim::IncrementalInvariantChecker::Options{.full_check_every = 0});
  ASSERT_TRUE(pure.reset(*sim, 0).ok);
  while (sim->step(scheduler)) {
    ASSERT_TRUE(pure.check_after_action(*sim, 0).ok);
  }
  EXPECT_EQ(pure.full_checks(), 0u);
}

TEST(IncrementalChecker, PooledReuseAcrossInstancesMatchesFresh) {
  // One checker object reset across different instances (the run_fuzz
  // worker shape) must behave exactly like a fresh checker per run.
  Rng rng(33);
  sim::IncrementalInvariantChecker pooled;
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t k = 2 + rng.index(3);
    const std::size_t n = 8 + rng.index(40);  // sizes shrink and grow
    core::RunSpec spec;
    spec.node_count = n;
    spec.homes = exp::draw_homes(exp::ConfigFamily::RandomAny, n, k, 1, rng);
    auto sim = core::make_simulator(core::Algorithm::KnownKFull, spec);
    ASSERT_TRUE(pooled.reset(*sim, 0).ok);
    sim::RandomScheduler scheduler(rng());
    scheduler.attach(*sim);
    scheduler.reset(k);
    std::size_t min_tokens = sim->total_tokens();
    while (sim->step(scheduler)) {
      const sim::CheckResult verdict =
          pooled.check_after_action(*sim, min_tokens);
      ASSERT_TRUE(verdict.ok) << verdict.reason;
      min_tokens = sim->total_tokens();
    }
    EXPECT_TRUE(sim->quiescent());
  }
}

}  // namespace
}  // namespace udring
