// Tests for the §5 future-work extension: tree networks, the Euler-tour
// virtual ring, and uniform deployment on trees through the embedding.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "embed/euler_ring.h"
#include "embed/tree.h"
#include "embed/tree_deploy.h"
#include "sim/checker.h"
#include "util/rng.h"

namespace udring::embed {
namespace {

TEST(TreeNetwork, RejectsNonTrees) {
  EXPECT_THROW(TreeNetwork(0, {}), std::invalid_argument);
  EXPECT_THROW(TreeNetwork(3, {{0, 1}}), std::invalid_argument);  // too few edges
  EXPECT_THROW(TreeNetwork(3, {{0, 1}, {0, 1}}), std::invalid_argument)
      << "duplicate edge leaves node 2 unreachable";
  EXPECT_THROW(TreeNetwork(4, {{0, 1}, {2, 3}, {0, 0}}), std::invalid_argument);
  EXPECT_NO_THROW(TreeNetwork(1, {}));
  EXPECT_NO_THROW(TreeNetwork(4, {{0, 1}, {1, 2}, {1, 3}}));
}

TEST(TreeNetwork, DistancesOnKnownShapes) {
  const TreeNetwork path = path_tree(5);
  EXPECT_EQ(path.distance(0, 4), 4u);
  EXPECT_EQ(path.distance(2, 2), 0u);
  const TreeNetwork star = star_tree(6);
  EXPECT_EQ(star.distance(1, 5), 2u);
  EXPECT_EQ(star.distance(0, 3), 1u);
  const TreeNetwork binary = binary_tree(7);
  EXPECT_EQ(binary.distance(3, 6), 4u) << "leaf to leaf through the root";
}

TEST(TreeGenerators, ProduceValidTrees) {
  Rng rng(17);
  for (const std::size_t n : {1u, 2u, 3u, 10u, 33u, 100u}) {
    const TreeNetwork tree = random_tree(n, rng);
    EXPECT_EQ(tree.size(), n);
    // Degrees sum to 2(n-1).
    std::size_t degree_sum = 0;
    for (TreeNodeId v = 0; v < n; ++v) degree_sum += tree.degree(v);
    EXPECT_EQ(degree_sum, 2 * (n - (n > 0 ? 1 : 0)));
  }
  const TreeNetwork caterpillar = caterpillar_tree(4, 2);
  EXPECT_EQ(caterpillar.size(), 4u + 8u);
}

TEST(TreeGenerators, RandomTreesVary) {
  Rng rng(3);
  std::set<std::size_t> leaf_counts;
  for (int trial = 0; trial < 20; ++trial) {
    const TreeNetwork tree = random_tree(12, rng);
    std::size_t leaves = 0;
    for (TreeNodeId v = 0; v < tree.size(); ++v) {
      if (tree.degree(v) == 1) ++leaves;
    }
    leaf_counts.insert(leaves);
  }
  EXPECT_GT(leaf_counts.size(), 1u) << "Prüfer decoding should vary shapes";
}

TEST(EulerRing, TourHasLengthTwoNMinusTwo) {
  Rng rng(5);
  for (const std::size_t n : {2u, 3u, 7u, 20u, 64u}) {
    const TreeNetwork tree = random_tree(n, rng);
    const EulerRing ring(tree);
    EXPECT_EQ(ring.size(), 2 * (n - 1));
  }
  const EulerRing trivial(path_tree(1));
  EXPECT_EQ(trivial.size(), 1u);
}

TEST(EulerRing, ConsecutiveTourStepsAreTreeNeighbors) {
  Rng rng(7);
  const TreeNetwork tree = random_tree(30, rng);
  const EulerRing ring(tree);
  for (std::size_t v = 0; v < ring.size(); ++v) {
    const TreeNodeId a = ring.tree_node(v);
    const TreeNodeId b = ring.tree_node((v + 1) % ring.size());
    const auto& neighbors = tree.neighbors(a);
    EXPECT_TRUE(std::find(neighbors.begin(), neighbors.end(), b) !=
                neighbors.end())
        << "tour step " << v << " is not a tree edge";
  }
}

TEST(EulerRing, EveryEdgeExactlyTwiceEveryNodeDegTimes) {
  Rng rng(11);
  const TreeNetwork tree = random_tree(25, rng);
  const EulerRing ring(tree);
  std::map<std::pair<TreeNodeId, TreeNodeId>, std::size_t> edge_uses;
  std::map<TreeNodeId, std::size_t> node_uses;
  for (std::size_t v = 0; v < ring.size(); ++v) {
    const TreeNodeId a = ring.tree_node(v);
    const TreeNodeId b = ring.tree_node((v + 1) % ring.size());
    ++edge_uses[{std::min(a, b), std::max(a, b)}];
    ++node_uses[a];
  }
  EXPECT_EQ(edge_uses.size(), tree.edge_count());
  for (const auto& [edge, uses] : edge_uses) {
    EXPECT_EQ(uses, 2u) << "edge (" << edge.first << "," << edge.second << ")";
  }
  for (TreeNodeId v = 0; v < tree.size(); ++v) {
    EXPECT_EQ(node_uses[v], tree.degree(v)) << "node " << v;
    EXPECT_EQ(ring.positions_of(v).size(), tree.degree(v));
  }
}

TEST(EulerRing, FirstPositionsAreDistinct) {
  Rng rng(13);
  const TreeNetwork tree = random_tree(40, rng);
  const EulerRing ring(tree);
  std::set<std::size_t> firsts;
  for (TreeNodeId v = 0; v < tree.size(); ++v) {
    firsts.insert(ring.first_position(v));
    EXPECT_EQ(ring.tree_node(ring.first_position(v)), v);
  }
  EXPECT_EQ(firsts.size(), tree.size());
}

TEST(EulerRing, PathTourIsThereAndBack) {
  const EulerRing ring(path_tree(4));
  EXPECT_EQ(ring.tour(), (std::vector<TreeNodeId>{0, 1, 2, 3, 2, 1}));
}

// ---- deployment on trees -----------------------------------------------------

using DeployParam = std::tuple<std::size_t, std::size_t, std::uint64_t>;

class TreeDeploySweep : public ::testing::TestWithParam<DeployParam> {};

TEST_P(TreeDeploySweep, UniformOnVirtualRingForEveryAlgorithm) {
  const auto [n, k, seed] = GetParam();
  Rng rng(seed);
  const TreeNetwork tree = random_tree(n, rng);
  // Distinct random tree homes.
  std::vector<TreeNodeId> homes;
  std::set<TreeNodeId> used;
  while (homes.size() < k) {
    const TreeNodeId node = static_cast<TreeNodeId>(rng.below(n));
    if (used.insert(node).second) homes.push_back(node);
  }
  for (const core::Algorithm algorithm :
       {core::Algorithm::KnownKFull, core::Algorithm::KnownKLogMem,
        core::Algorithm::UnknownRelaxed}) {
    const TreeDeployReport report = deploy_on_tree(tree, homes, algorithm);
    ASSERT_TRUE(report.success)
        << core::to_string(algorithm) << " n=" << n << " k=" << k
        << " seed=" << seed << ": " << report.failure;
    EXPECT_EQ(report.virtual_ring_size, 2 * (n - 1));
    const auto check = sim::check_positions_uniform(report.virtual_positions,
                                                    report.virtual_ring_size);
    EXPECT_TRUE(check.ok) << check.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreeDeploySweep,
                         ::testing::Combine(::testing::Values(8, 16, 33),
                                            ::testing::Values(2, 4, 6),
                                            ::testing::Values(1, 2, 3)));

TEST(TreeDeploy, CoverageImprovesOnAPackedStart) {
  // All agents clustered in one subtree of a path: after deployment the
  // worst hop distance to an agent must shrink.
  const TreeNetwork tree = path_tree(32);
  const std::vector<TreeNodeId> homes = {0, 1, 2, 3};
  const auto [worst_before, mean_before] = tree_coverage(tree, homes);
  const TreeDeployReport report =
      deploy_on_tree(tree, homes, core::Algorithm::KnownKFull);
  ASSERT_TRUE(report.success) << report.failure;
  EXPECT_LT(report.worst_tree_distance, worst_before);
  EXPECT_LT(report.mean_tree_distance, mean_before);
}

TEST(TreeDeploy, StarTourGapsBoundPatrolStaleness) {
  // On a star the tour alternates centre-leaf; uniform tour spacing puts
  // agents ≈ m/k tour steps apart — the patrol staleness bound.
  const TreeNetwork tree = star_tree(17);  // m = 32
  const std::vector<TreeNodeId> homes = {1, 2, 3, 4};
  const TreeDeployReport report =
      deploy_on_tree(tree, homes, core::Algorithm::KnownKFull);
  ASSERT_TRUE(report.success) << report.failure;
  const auto gaps =
      sim::ring_gaps(report.virtual_positions, report.virtual_ring_size);
  for (const std::size_t gap : gaps) EXPECT_EQ(gap, 8u);
}

TEST(TreeDeploy, MovesAreTreeEdgeTraversals) {
  // Cost sanity (§5: "the total moves between the embedded ring and the
  // original network is asymptotically equivalent"): Algorithm 1 on the
  // virtual m-ring costs ≤ 3km tree moves.
  Rng rng(23);
  const TreeNetwork tree = random_tree(40, rng);
  const std::vector<TreeNodeId> homes = {0, 5, 11, 17, 23};
  const TreeDeployReport report =
      deploy_on_tree(tree, homes, core::Algorithm::KnownKFull);
  ASSERT_TRUE(report.success) << report.failure;
  const std::size_t m = report.virtual_ring_size;
  EXPECT_GE(report.total_moves, homes.size() * m) << "k full tour laps";
  EXPECT_LT(report.total_moves, 3 * homes.size() * m);
}

TEST(TreeDeploy, RejectsDuplicateHomes) {
  const TreeNetwork tree = path_tree(8);
  EXPECT_THROW(
      (void)deploy_on_tree(tree, {1, 1}, core::Algorithm::KnownKFull),
      std::invalid_argument);
}

}  // namespace
}  // namespace udring::embed
