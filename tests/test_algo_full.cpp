// Tests for Algorithm 1 (core/known_k_full.h): uniform deployment with
// termination detection for agents that know k — Theorem 3's correctness and
// complexity claims, on worked examples and parameterized sweeps across
// configurations and schedulers.

#include "core/known_k_full.h"

#include <gtest/gtest.h>

#include <tuple>

#include "config/generators.h"
#include "core/runner.h"
#include "core/targets.h"
#include "sim/checker.h"
#include "util/bits.h"
#include "util/rng.h"

namespace udring::core {
namespace {

RunReport run_full(std::size_t n, std::vector<std::size_t> homes,
                   sim::SchedulerKind kind = sim::SchedulerKind::RoundRobin,
                   std::uint64_t seed = 1) {
  RunSpec spec;
  spec.node_count = n;
  spec.homes = std::move(homes);
  spec.scheduler = kind;
  spec.seed = seed;
  return run_algorithm(Algorithm::KnownKFull, spec);
}

TEST(AlgoFull, Fig2Example) {
  // n = 16, k = 4: final gaps must all be 4.
  const RunReport report = run_full(16, {0, 1, 2, 3});
  ASSERT_TRUE(report.success) << report.failure;
  EXPECT_EQ(report.final_positions.size(), 4u);
}

TEST(AlgoFull, SingleAgentHaltsAfterOneCircuit) {
  const RunReport report = run_full(9, {4});
  ASSERT_TRUE(report.success) << report.failure;
  EXPECT_EQ(report.final_positions, (std::vector<std::size_t>{4}))
      << "rank 0, disBase 0: the agent halts back at its home";
  EXPECT_EQ(report.total_moves, 9u) << "exactly one circuit";
}

TEST(AlgoFull, TwoAgentsOppositeEachOther) {
  const RunReport report = run_full(8, {0, 1});
  ASSERT_TRUE(report.success) << report.failure;
  const auto gaps = sim::ring_gaps(report.final_positions, 8);
  EXPECT_EQ(gaps, (std::vector<std::size_t>{4, 4}));
}

TEST(AlgoFull, AlreadyUniformStaysUniform) {
  // From a uniform configuration every agent is rank 0 relative to its own
  // base node (l = k): nobody moves in the deployment phase.
  const RunReport report = run_full(12, {0, 3, 6, 9});
  ASSERT_TRUE(report.success) << report.failure;
  EXPECT_EQ(report.final_positions, (std::vector<std::size_t>{0, 3, 6, 9}));
  EXPECT_EQ(report.total_moves, 4u * 12u) << "selection circuits only";
}

TEST(AlgoFull, Fig1bPeriodicConfiguration) {
  // l = 2: two base nodes; deployment must still be collision-free.
  const RunReport report = run_full(gen::kFig1bNodes, gen::fig1b_homes());
  ASSERT_TRUE(report.success) << report.failure;
}

TEST(AlgoFull, MeasuresRingExactly) {
  RunSpec spec;
  spec.node_count = 13;
  spec.homes = {0, 1, 5, 11};
  auto simulator = make_simulator(Algorithm::KnownKFull, spec);
  sim::RoundRobinScheduler scheduler;
  (void)simulator->run(scheduler);
  for (sim::AgentId id = 0; id < 4; ++id) {
    const auto& agent = dynamic_cast<const KnownKFullAgent&>(simulator->program(id));
    EXPECT_EQ(agent.measured_n(), 13u);
    EXPECT_EQ(sum(agent.distance_sequence()), 13u);
    EXPECT_EQ(agent.distance_sequence().size(), 4u);
  }
}

TEST(AlgoFull, RanksArePerBaseAndDistinct) {
  // Homes {0,1,3,6,7,9} on 12 nodes (Fig 1(b) shape): l = 2, so ranks run
  // 0..2 within each half.
  RunSpec spec;
  spec.node_count = 12;
  spec.homes = {0, 1, 3, 6, 7, 9};
  auto simulator = make_simulator(Algorithm::KnownKFull, spec);
  sim::RoundRobinScheduler scheduler;
  (void)simulator->run(scheduler);
  std::vector<std::size_t> ranks;
  for (sim::AgentId id = 0; id < 6; ++id) {
    ranks.push_back(
        dynamic_cast<const KnownKFullAgent&>(simulator->program(id)).rank());
  }
  std::sort(ranks.begin(), ranks.end());
  EXPECT_EQ(ranks, (std::vector<std::size_t>{0, 0, 1, 1, 2, 2}));
}

TEST(AlgoFull, MemoryIsThetaKLogN) {
  // The distance sequence dominates: k·bit_width(n) bits, within constants.
  const std::size_t n = 64, k = 8;
  RunSpec spec;
  spec.node_count = n;
  Rng rng(7);
  spec.homes = gen::random_homes(n, k, rng);
  const RunReport report = run_algorithm(Algorithm::KnownKFull, spec);
  ASSERT_TRUE(report.success) << report.failure;
  const std::size_t k_log_n = k * bit_width(n);
  EXPECT_GE(report.max_memory_bits, k_log_n / 2);
  EXPECT_LE(report.max_memory_bits, 4 * k_log_n);
}

TEST(AlgoFull, MovesRespectTheoremThreeBound) {
  // Each agent: n (selection) + < 2n (deployment) ⇒ total < 3kn.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const std::size_t n = 48, k = 12;
    Rng rng(seed);
    RunSpec spec;
    spec.node_count = n;
    spec.homes = gen::random_homes(n, k, rng);
    const RunReport report = run_algorithm(Algorithm::KnownKFull, spec);
    ASSERT_TRUE(report.success) << report.failure;
    EXPECT_LT(report.total_moves, 3 * k * n);
    EXPECT_GE(report.total_moves, k * n) << "every agent does a full circuit";
  }
}

TEST(AlgoFull, IdealTimeIsLinearInN) {
  // Theorem 3: O(n) time. Each agent moves ≤ 3n with no waiting, so the
  // causal makespan is ≤ 3n + 1.
  const std::size_t n = 60, k = 6;
  Rng rng(11);
  RunSpec spec;
  spec.node_count = n;
  spec.homes = gen::random_homes(n, k, rng);
  spec.scheduler = sim::SchedulerKind::Synchronous;
  const RunReport report = run_algorithm(Algorithm::KnownKFull, spec);
  ASSERT_TRUE(report.success) << report.failure;
  EXPECT_LE(report.makespan, 3 * n + 1);
}

TEST(AlgoFull, PhaseSplitIsSelectionThenDeployment) {
  RunSpec spec;
  spec.node_count = 20;
  spec.homes = {0, 1, 2, 3, 4};
  const RunReport report = run_algorithm(Algorithm::KnownKFull, spec);
  ASSERT_TRUE(report.success) << report.failure;
  ASSERT_EQ(report.moves_by_phase.size(), 2u);
  EXPECT_EQ(report.moves_by_phase[KnownKFullAgent::kSelection], 5u * 20u)
      << "every agent travels one full circuit in selection";
  EXPECT_GT(report.moves_by_phase[KnownKFullAgent::kDeployment], 0u);
}

TEST(AlgoFull, FinalPositionsMatchAnalyticTargets) {
  // White-box exactness: the agents must land on precisely the target set
  // all_targets(plan, base) where base is the home of the lexmin-rotation
  // agent — not merely on *some* uniform set.
  Rng rng(17);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 10 + static_cast<std::size_t>(rng.below(30));
    const std::size_t k =
        2 + static_cast<std::size_t>(rng.below(std::min<std::uint64_t>(n - 1, 8)));
    RunSpec spec;
    spec.node_count = n;
    spec.homes = gen::random_homes(n, k, rng);
    const RunReport report = run_algorithm(Algorithm::KnownKFull, spec);
    ASSERT_TRUE(report.success) << report.failure;

    // Analytic expectation from the configuration alone.
    std::vector<std::size_t> homes = spec.homes;
    std::sort(homes.begin(), homes.end());
    const DistanceSeq d = distances_from_positions(homes, n);
    const std::size_t base_index = min_rotation(d);
    const std::size_t base_node = homes[base_index];
    const TargetPlan plan = make_target_plan(n, k, symmetry_degree(d));
    EXPECT_EQ(report.final_positions, all_targets(plan, base_node))
        << "n=" << n << " k=" << k << " trial=" << trial;
  }
}

// ---- footnote-2 variant: knowledge of n instead of k -------------------------

TEST(AlgoFullKnownN, MeasuresKAndDeploysUniformly) {
  RunSpec spec;
  spec.node_count = 13;
  spec.homes = {0, 1, 5, 11};
  auto simulator = make_simulator(Algorithm::KnownNFull, spec);
  sim::RoundRobinScheduler scheduler;
  (void)simulator->run(scheduler);
  ASSERT_TRUE(sim::UniformDeploymentOracle(true).check_goal(*simulator).ok);
  for (sim::AgentId id = 0; id < 4; ++id) {
    const auto& agent =
        dynamic_cast<const KnownNFullAgent&>(simulator->program(id));
    EXPECT_EQ(agent.measured_k(), 4u);
    EXPECT_EQ(sum(agent.distance_sequence()), 13u);
  }
}

TEST(AlgoFullKnownN, LandsOnExactlyTheSameTargetsAsKnownK) {
  // The paper's footnote 2: knowledge of n or of k is interchangeable. Both
  // variants must compute identical distance sequences, ranks and targets.
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 8 + static_cast<std::size_t>(rng.below(40));
    const std::size_t k =
        2 + static_cast<std::size_t>(rng.below(std::min<std::uint64_t>(n - 1, 9)));
    RunSpec spec;
    spec.node_count = n;
    spec.homes = gen::random_homes(n, k, rng);
    const RunReport with_k = run_algorithm(Algorithm::KnownKFull, spec);
    const RunReport with_n = run_algorithm(Algorithm::KnownNFull, spec);
    ASSERT_TRUE(with_k.success) << with_k.failure;
    ASSERT_TRUE(with_n.success) << with_n.failure;
    EXPECT_EQ(with_k.final_positions, with_n.final_positions)
        << "n=" << n << " k=" << k;
    EXPECT_EQ(with_k.total_moves, with_n.total_moves);
  }
}

TEST(AlgoFullKnownN, SurvivesAllSchedulers) {
  for (const sim::SchedulerKind kind : sim::all_scheduler_kinds()) {
    RunSpec spec;
    spec.node_count = 21;
    spec.homes = {0, 2, 3, 9, 15};
    spec.scheduler = kind;
    spec.seed = 5;
    const RunReport report = run_algorithm(Algorithm::KnownNFull, spec);
    EXPECT_TRUE(report.success) << sim::to_string(kind) << ": " << report.failure;
  }
}

// ---- parameterized sweep: (n, k) × scheduler × seed -------------------------

using SweepParam = std::tuple<std::tuple<std::size_t, std::size_t>,
                              sim::SchedulerKind, std::uint64_t>;

class AlgoFullSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AlgoFullSweep, AchievesUniformDeploymentWithTermination) {
  const auto [nk, scheduler, seed] = GetParam();
  const auto [n, k] = nk;
  Rng rng(seed * 7919 + n * 31 + k);
  RunSpec spec;
  spec.node_count = n;
  spec.homes = gen::random_homes(n, k, rng);
  spec.scheduler = scheduler;
  spec.seed = seed;
  const RunReport report = run_algorithm(Algorithm::KnownKFull, spec);
  ASSERT_TRUE(report.success)
      << "n=" << n << " k=" << k << " sched=" << sim::to_string(scheduler)
      << " seed=" << seed << ": " << report.failure;
  EXPECT_LT(report.total_moves, 3 * k * n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgoFullSweep,
    ::testing::Combine(
        ::testing::Values(std::make_tuple(4, 2), std::make_tuple(7, 3),
                          std::make_tuple(12, 4), std::make_tuple(16, 16),
                          std::make_tuple(17, 5), std::make_tuple(24, 6),
                          std::make_tuple(31, 7), std::make_tuple(40, 10)),
        ::testing::ValuesIn(sim::all_scheduler_kinds()),
        ::testing::Values(1, 2, 3)));

// Periodic configurations deserve their own sweep: base-node multiplicity
// must not cause collisions for any l | k.
class AlgoFullPeriodic
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {
};

TEST_P(AlgoFullPeriodic, PeriodicConfigurationsDeployCleanly) {
  const auto [n, k, l] = GetParam();
  Rng rng(n * 1000 + k * 10 + l);
  RunSpec spec;
  spec.node_count = n;
  spec.homes = gen::periodic_homes(n, k, l, rng);
  const RunReport report = run_algorithm(Algorithm::KnownKFull, spec);
  ASSERT_TRUE(report.success) << "n=" << n << " k=" << k << " l=" << l << ": "
                              << report.failure;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlgoFullPeriodic,
                         ::testing::Values(std::make_tuple(12, 6, 2),
                                           std::make_tuple(12, 6, 3),
                                           std::make_tuple(24, 8, 4),
                                           std::make_tuple(24, 12, 2),
                                           std::make_tuple(36, 12, 6),
                                           std::make_tuple(40, 20, 5),
                                           std::make_tuple(48, 16, 8)));

}  // namespace
}  // namespace udring::core
