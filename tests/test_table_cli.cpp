// Tests for util/table.h and util/cli.h — the presentation layer of the
// bench binaries and examples.

#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.h"
#include "util/table.h"

namespace udring {
namespace {

TEST(Table, AlignsColumnsAndPrintsRule) {
  Table table({"n", "k", "moves"});
  table.add_row({"64", "8", "812"});
  table.add_row({"4096", "256", "1234567"});
  std::ostringstream out;
  out << table;
  const std::string text = out.str();
  EXPECT_NE(text.find("n"), std::string::npos);
  EXPECT_NE(text.find("1234567"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  // Header line and rule and 2 rows → at least 4 lines.
  EXPECT_GE(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(Table, PadsShortRows) {
  Table table({"a", "b", "c"});
  table.add_row({"only"});
  std::ostringstream out;
  EXPECT_NO_THROW(out << table);
  EXPECT_EQ(table.rows(), 1u);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(PrintSection, EmitsTitle) {
  std::ostringstream out;
  print_section(out, "Table 1");
  EXPECT_NE(out.str().find("== Table 1"), std::string::npos);
}

TEST(Cli, ParsesEqualsAndBooleanForms) {
  const char* argv[] = {"prog", "--n=64", "--k=8", "--verbose", "pos1"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_size("n", 0, "ring size"), 64u);
  EXPECT_EQ(cli.get_size("k", 0, "agents"), 8u);
  EXPECT_TRUE(cli.get_flag("verbose", "chatty"));
  EXPECT_FALSE(cli.get_flag("quiet", "silent"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_size("n", 128, "ring size"), 128u);
  EXPECT_EQ(cli.get_u64("seed", 42, "rng seed"), 42u);
  EXPECT_EQ(cli.get("name", "label", "fallback").value(), "fallback");
}

TEST(Cli, HelpFlagDetected) {
  const char* argv[] = {"prog", "--help"};
  Cli cli(2, argv);
  EXPECT_TRUE(cli.wants_help());
  testing::internal::CaptureStdout();
  (void)cli.get_size("n", 1, "ring size");
  cli.print_help("test program");
  const std::string help = testing::internal::GetCapturedStdout();
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("ring size"), std::string::npos);
}

}  // namespace
}  // namespace udring
