// Unit tests for sim/topology.h: ring arithmetic, explicit closed walks,
// and the embedding views (labels/ports) the native topology path rides on.
// The embed-level edge cases (single-node tree, path tree, Eulerian
// multigraph) and the native-vs-copy-embedding cross-checks live further
// down, next to the builders they exercise.

#include "sim/topology.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "core/runner.h"
#include "embed/euler_ring.h"
#include "embed/graph.h"
#include "embed/topology.h"
#include "embed/tree.h"
#include "embed/tree_deploy.h"
#include "sim/checker.h"
#include "util/rng.h"

namespace udring::sim {
namespace {

TEST(Topology, RejectsEmpty) {
  EXPECT_THROW((void)Topology::ring(0), std::invalid_argument);
  EXPECT_THROW((void)Topology::virtual_ring(0, {}), std::invalid_argument);
  EXPECT_THROW((void)Topology::closed_walk({}), std::invalid_argument);
  EXPECT_TRUE(Topology{}.empty());
}

TEST(Topology, RingNextWrapsAround) {
  const Topology ring = Topology::ring(5);
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_TRUE(ring.is_ring_order());
  EXPECT_EQ(ring.next(0), 1u);
  EXPECT_EQ(ring.next(3), 4u);
  EXPECT_EQ(ring.next(4), 0u);
  EXPECT_EQ(ring.name(), "ring");
}

TEST(Topology, SingleNodeSelfLoop) {
  const Topology ring = Topology::ring(1);
  EXPECT_EQ(ring.next(0), 0u);
  EXPECT_EQ(ring.distance(0, 0), 0u);
}

TEST(Topology, DistanceIsForwardOnly) {
  const Topology ring = Topology::ring(10);
  EXPECT_EQ(ring.distance(2, 7), 5u);
  EXPECT_EQ(ring.distance(7, 2), 5u) << "(2-7) mod 10";
  EXPECT_EQ(ring.distance(4, 4), 0u);
  EXPECT_EQ(ring.distance(9, 0), 1u);
}

TEST(Topology, DistanceTriangleAroundRing) {
  const Topology ring = Topology::ring(12);
  for (NodeId a = 0; a < 12; ++a) {
    for (NodeId b = 0; b < 12; ++b) {
      if (a == b) continue;
      EXPECT_EQ(ring.distance(a, b) + ring.distance(b, a), 12u)
          << "forward there + forward back must lap the ring once";
    }
  }
}

TEST(Topology, LabelsDefaultToIdentity) {
  const Topology ring = Topology::ring(4);
  EXPECT_FALSE(ring.has_labels());
  for (NodeId v = 0; v < 4; ++v) EXPECT_EQ(ring.label(v), v);
  EXPECT_EQ(ring.underlying_node_count(), 4u);
}

TEST(Topology, VirtualRingCarriesEmbeddingViews) {
  // The Euler tour of the path 0-1-2: steps 0,1,2,1 — four virtual nodes
  // over three underlying nodes.
  const Topology tour =
      Topology::virtual_ring(4, {0, 1, 2, 1}, {0, 1, 0, 0}, "euler-tree");
  EXPECT_EQ(tour.size(), 4u);
  EXPECT_TRUE(tour.is_ring_order());
  EXPECT_TRUE(tour.has_labels());
  EXPECT_TRUE(tour.has_ports());
  EXPECT_EQ(tour.label(3), 1u);
  EXPECT_EQ(tour.port(1), 1u);
  EXPECT_EQ(tour.underlying_node_count(), 3u);
  EXPECT_EQ(tour.name(), "euler-tree");
}

TEST(Topology, VirtualRingRejectsShortViews) {
  EXPECT_THROW((void)Topology::virtual_ring(4, {0, 1}), std::invalid_argument);
  EXPECT_THROW((void)Topology::virtual_ring(4, {0, 1, 2, 1}, {0}),
               std::invalid_argument);
}

TEST(Topology, ClosedWalkFollowsExplicitSuccessors) {
  // A rotated 4-ring: 0 → 2 → 1 → 3 → 0.
  const Topology walk = Topology::closed_walk({2, 3, 1, 0});
  EXPECT_EQ(walk.size(), 4u);
  EXPECT_FALSE(walk.is_ring_order());
  EXPECT_EQ(walk.next(0), 2u);
  EXPECT_EQ(walk.next(2), 1u);
  EXPECT_EQ(walk.next(1), 3u);
  EXPECT_EQ(walk.next(3), 0u);
  EXPECT_EQ(walk.distance(0, 3), 3u);
  EXPECT_EQ(walk.distance(3, 0), 1u);
}

TEST(Topology, ClosedWalkRejectsNonCycles) {
  // Two 2-cycles instead of one 4-cycle.
  EXPECT_THROW((void)Topology::closed_walk({1, 0, 3, 2}), std::invalid_argument);
  // Out-of-range successor.
  EXPECT_THROW((void)Topology::closed_walk({1, 2, 9}), std::invalid_argument);
  // Not a permutation (two nodes map to 0; node 2 unreachable).
  EXPECT_THROW((void)Topology::closed_walk({0, 0, 1}), std::invalid_argument);
  // Identity walk on one node is the valid degenerate case.
  EXPECT_NO_THROW((void)Topology::closed_walk({0}));
}

TEST(Topology, ImplicitAndExplicitRingOrderAgree) {
  const Topology implicit = Topology::ring(7);
  std::vector<NodeId> successor(7);
  std::iota(successor.begin(), successor.end(), 1);
  successor.back() = 0;
  const Topology explicit_walk = Topology::closed_walk(std::move(successor));
  for (NodeId v = 0; v < 7; ++v) {
    EXPECT_EQ(implicit.next(v), explicit_walk.next(v));
    EXPECT_EQ(implicit.distance(0, v), explicit_walk.distance(0, v));
  }
}

// ---- embed builders ---------------------------------------------------------

TEST(EmbedTopology, SingleNodeTreeIsTheTrivialVirtualRing) {
  const embed::TreeNetwork tree(1, {});
  const Topology topo = embed::euler_tour_topology(tree);
  EXPECT_EQ(topo.size(), 1u);
  EXPECT_EQ(topo.next(0), 0u);
  EXPECT_EQ(topo.label(0), 0u);

  // A single agent on the single-node tree deploys trivially.
  const embed::TreeDeployReport report =
      embed::deploy_on_tree(tree, {0}, core::Algorithm::KnownKFull);
  EXPECT_TRUE(report.success) << report.failure;
  EXPECT_EQ(report.virtual_ring_size, 1u);
  EXPECT_EQ(report.tree_positions, (std::vector<embed::TreeNodeId>{0}));
}

TEST(EmbedTopology, PathTreeTourMatchesEulerRing) {
  const embed::TreeNetwork path = embed::path_tree(5);
  const embed::EulerRing ring(path);
  const Topology topo = embed::euler_tour_topology(path);
  ASSERT_EQ(topo.size(), ring.size());
  for (std::size_t v = 0; v < topo.size(); ++v) {
    EXPECT_EQ(topo.label(v), ring.tree_node(v));
    // Ports point at the physical edge each virtual move crosses.
    const embed::TreeNodeId from = ring.tree_node(v);
    const embed::TreeNodeId to = ring.tree_node((v + 1) % ring.size());
    EXPECT_EQ(path.neighbors(from).at(topo.port(v)), to);
  }
  // virtual_homes must agree with the EulerRing first-visit map.
  for (embed::TreeNodeId node = 0; node < path.size(); ++node) {
    EXPECT_EQ(embed::virtual_homes(topo, {node})[0], ring.first_position(node));
  }
}

TEST(EmbedTopology, EulerianMultigraphCircuitCoversEveryEdgeOnce) {
  // Two triangles sharing node 2 (all degrees even: 2,2,4,2,2), plus a
  // parallel-edge pair between 0 and 1 — a genuine multigraph.
  const std::vector<std::pair<embed::TreeNodeId, embed::TreeNodeId>> edges = {
      {0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}, {0, 1}, {1, 0},
  };
  const Topology topo = embed::eulerian_circuit_topology(5, edges);
  EXPECT_EQ(topo.size(), edges.size()) << "one virtual step per edge";
  EXPECT_EQ(topo.underlying_node_count(), 5u);

  // Walking one lap crosses every edge exactly once (count by unordered
  // endpoint pair, respecting multiplicity).
  std::map<std::pair<embed::TreeNodeId, embed::TreeNodeId>, std::size_t> walked;
  for (std::size_t v = 0; v < topo.size(); ++v) {
    const embed::TreeNodeId a = topo.label(v);
    const embed::TreeNodeId b = topo.label(topo.next(v));
    ++walked[{std::min(a, b), std::max(a, b)}];
  }
  std::map<std::pair<embed::TreeNodeId, embed::TreeNodeId>, std::size_t> expected;
  for (const auto& [a, b] : edges) ++expected[{std::min(a, b), std::max(a, b)}];
  EXPECT_EQ(walked, expected);
}

TEST(EmbedTopology, EulerianCircuitRejectsOddDegreesAndDisconnection) {
  EXPECT_THROW(
      (void)embed::eulerian_circuit_topology(3, {{0, 1}, {1, 2}}),
      std::invalid_argument)
      << "path has odd-degree endpoints";
  EXPECT_THROW((void)embed::eulerian_circuit_topology(
                   4, {{0, 1}, {1, 0}, {2, 3}, {3, 2}}),
               std::invalid_argument)
      << "two components";
  EXPECT_NO_THROW((void)embed::eulerian_circuit_topology(1, {}));
}

TEST(EmbedTopology, DeploymentOnEulerianMultigraphIsUniform) {
  const std::vector<std::pair<embed::TreeNodeId, embed::TreeNodeId>> edges = {
      {0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2},
  };
  core::RunSpec spec;
  spec.topology = embed::eulerian_circuit_topology(5, edges);
  spec.node_count = spec.topology.size();
  spec.homes = embed::virtual_homes(spec.topology, {0, 3});
  const core::RunReport report =
      core::run_algorithm(core::Algorithm::KnownKFull, spec);
  ASSERT_TRUE(report.success) << report.failure;
  const auto check =
      check_positions_uniform(report.final_positions, spec.topology.size());
  EXPECT_TRUE(check.ok) << check.reason;
  ASSERT_EQ(report.final_labels.size(), report.final_positions.size());
  for (std::size_t i = 0; i < report.final_positions.size(); ++i) {
    EXPECT_EQ(report.final_labels[i],
              spec.topology.label(report.final_positions[i]));
  }
}

TEST(EmbedTopology, AlgorithmDriversRejectExplicitClosedWalks) {
  // The goal oracles and trace replay assume walk order == position order;
  // make_instance must refuse an explicit successor permutation rather than
  // silently mis-judging uniformity (closed walks still run at the sim
  // layer via sim::Instance directly).
  core::RunSpec spec;
  spec.topology = Topology::closed_walk({2, 0, 1});
  spec.node_count = 3;
  spec.homes = {0};
  EXPECT_THROW((void)core::run_algorithm(core::Algorithm::KnownKFull, spec),
               std::invalid_argument);
}

TEST(EmbedTopology, DrawVirtualHomesAreDistinctFirstPositions) {
  Rng rng(9);
  const embed::TreeNetwork tree = embed::random_tree(12, rng);
  const Topology topo = embed::euler_tour_topology(tree);
  const std::vector<std::size_t> homes = embed::draw_virtual_homes(topo, 5, rng);
  EXPECT_EQ(homes.size(), 5u);
  std::set<std::size_t> distinct(homes.begin(), homes.end());
  EXPECT_EQ(distinct.size(), homes.size());
  for (const std::size_t v : homes) EXPECT_LT(v, topo.size());
  EXPECT_THROW((void)embed::draw_virtual_homes(topo, 13, rng),
               std::invalid_argument);
}

// ---- native path ≡ legacy copy-embedding ------------------------------------

/// What deploy_on_tree did before the native topology path: materialize the
/// Euler tour as a detached plain ring, run on it, and map every result back
/// by hand. Kept here (and only here) as the reference the native path must
/// match exactly before the copy path could be retired.
struct LegacyResult {
  bool success = false;
  std::vector<std::size_t> virtual_positions;
  std::vector<embed::TreeNodeId> tree_positions;
  std::size_t total_moves = 0;
  std::uint64_t makespan = 0;
};

LegacyResult legacy_copy_embedding(const embed::TreeNetwork& tree,
                                   const std::vector<embed::TreeNodeId>& homes,
                                   core::Algorithm algorithm) {
  const embed::EulerRing ring(tree);
  core::RunSpec spec;
  spec.node_count = ring.size();
  for (const embed::TreeNodeId home : homes) {
    spec.homes.push_back(ring.first_position(home));
  }
  const core::RunReport report = core::run_algorithm(algorithm, spec);
  LegacyResult out;
  out.success = report.success;
  out.virtual_positions = report.final_positions;
  for (const std::size_t v : report.final_positions) {
    out.tree_positions.push_back(ring.tree_node(v));
  }
  out.total_moves = report.total_moves;
  out.makespan = report.makespan;
  return out;
}

using CrossCheckParam = std::tuple<std::size_t, std::size_t, std::uint64_t>;

class NativeVsCopySweep : public ::testing::TestWithParam<CrossCheckParam> {};

TEST_P(NativeVsCopySweep, TreeWorkloadsMatchTheLegacyCopyEmbedding) {
  const auto [n, requested_k, seed] = GetParam();
  const std::size_t k = std::min(requested_k, n);  // never more agents than nodes
  Rng rng(seed);
  const embed::TreeNetwork tree = embed::random_tree(n, rng);
  std::vector<embed::TreeNodeId> homes;
  std::set<embed::TreeNodeId> used;
  while (homes.size() < k) {
    const auto node = static_cast<embed::TreeNodeId>(rng.below(n));
    if (used.insert(node).second) homes.push_back(node);
  }
  for (const core::Algorithm algorithm :
       {core::Algorithm::KnownKFull, core::Algorithm::KnownKLogMem,
        core::Algorithm::UnknownRelaxed}) {
    const LegacyResult legacy = legacy_copy_embedding(tree, homes, algorithm);
    const embed::TreeDeployReport native =
        embed::deploy_on_tree(tree, homes, algorithm);
    EXPECT_EQ(native.success, legacy.success) << core::to_string(algorithm);
    EXPECT_EQ(native.virtual_positions, legacy.virtual_positions);
    EXPECT_EQ(native.tree_positions, legacy.tree_positions);
    EXPECT_EQ(native.total_moves, legacy.total_moves)
        << core::to_string(algorithm) << ": move counts must be identical";
    EXPECT_EQ(native.makespan, legacy.makespan);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, NativeVsCopySweep,
                         ::testing::Combine(::testing::Values(2, 9, 24),
                                            ::testing::Values(1, 3, 5),
                                            ::testing::Values(1, 4)));

TEST(NativeVsCopy, GraphWorkloadsMatchThroughTheSpanningTree) {
  Rng rng(11);
  const embed::GraphNetwork graph = embed::random_connected_graph(18, 9, rng);
  const embed::TreeNetwork tree = graph.spanning_tree();
  const std::vector<embed::TreeNodeId> homes = {0, 4, 9, 13};

  const LegacyResult legacy =
      legacy_copy_embedding(tree, homes, core::Algorithm::KnownKFull);

  core::RunSpec spec;
  spec.topology = embed::spanning_tree_topology(graph);
  spec.node_count = spec.topology.size();
  spec.homes = embed::virtual_homes(spec.topology, homes);
  const core::RunReport native =
      core::run_algorithm(core::Algorithm::KnownKFull, spec);

  EXPECT_EQ(native.success, legacy.success);
  EXPECT_EQ(native.final_positions, legacy.virtual_positions);
  EXPECT_EQ(native.final_labels,
            std::vector<std::size_t>(legacy.tree_positions.begin(),
                                     legacy.tree_positions.end()));
  EXPECT_EQ(native.total_moves, legacy.total_moves);
}

}  // namespace
}  // namespace udring::sim
