// Tests for sim/scheduler.h: each scheduler family must be deterministic
// given its seed, respect the enabled set, and drive workloads to
// completion (fairness on terminating runs).

#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "sim/simulator.h"
#include "support/test_agents.h"

namespace udring::sim {
namespace {

using test::SitterAgent;
using test::WalkerAgent;

TEST(RoundRobin, CyclesThroughAllAgents) {
  RoundRobinScheduler scheduler;
  scheduler.reset(4);
  const std::vector<AgentId> all = {0, 1, 2, 3};
  std::vector<AgentId> picks;
  for (int i = 0; i < 8; ++i) picks.push_back(scheduler.pick(all));
  EXPECT_EQ(picks, (std::vector<AgentId>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(RoundRobin, SkipsDisabledAgents) {
  RoundRobinScheduler scheduler;
  scheduler.reset(4);
  EXPECT_EQ(scheduler.pick({1, 3}), 1u);
  EXPECT_EQ(scheduler.pick({1, 3}), 3u);
  EXPECT_EQ(scheduler.pick({1, 3}), 1u);
}

TEST(Random, DeterministicPerSeedAndCoversAgents) {
  RandomScheduler a(7), b(7);
  a.reset(5);
  b.reset(5);
  const std::vector<AgentId> all = {0, 1, 2, 3, 4};
  std::set<AgentId> seen;
  for (int i = 0; i < 200; ++i) {
    const AgentId pick = a.pick(all);
    EXPECT_EQ(pick, b.pick(all));
    seen.insert(pick);
  }
  EXPECT_EQ(seen.size(), 5u) << "every agent should be picked in 200 draws";
}

TEST(Synchronous, EveryEnabledAgentActsOncePerRound) {
  SynchronousScheduler scheduler;
  scheduler.reset(3);
  const std::vector<AgentId> all = {0, 1, 2};
  std::map<AgentId, int> counts;
  for (int i = 0; i < 9; ++i) ++counts[scheduler.pick(all)];
  for (const auto& [agent, count] : counts) {
    EXPECT_EQ(count, 3) << "agent " << agent;
  }
  EXPECT_EQ(scheduler.rounds(), 2u) << "two completed rounds after 9 picks";
}

TEST(Priority, AlwaysPicksHighestPriorityEnabled) {
  PriorityScheduler scheduler({2, 0, 1});
  scheduler.reset(3);
  EXPECT_EQ(scheduler.pick({0, 1, 2}), 2u);
  EXPECT_EQ(scheduler.pick({0, 1}), 0u);
  EXPECT_EQ(scheduler.pick({1}), 1u);
}

TEST(Priority, UnlistedAgentsComeLastInIdOrder) {
  PriorityScheduler scheduler({3});
  scheduler.reset(4);
  EXPECT_EQ(scheduler.pick({0, 1, 2, 3}), 3u);
  EXPECT_EQ(scheduler.pick({0, 1, 2}), 0u);
}

TEST(Burst, SticksWithTheCurrentAgentWhileEnabled) {
  BurstScheduler scheduler(3);
  scheduler.reset(3);
  const AgentId first = scheduler.pick({0, 1, 2});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(scheduler.pick({0, 1, 2}), first);
  }
  // Remove `first` from the enabled set: it must switch.
  std::vector<AgentId> rest;
  for (AgentId id = 0; id < 3; ++id) {
    if (id != first) rest.push_back(id);
  }
  const AgentId second = scheduler.pick(rest);
  EXPECT_NE(second, first);
}

TEST(Factory, ProducesEveryKind) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    const auto scheduler = make_scheduler(kind, 1, 4);
    ASSERT_NE(scheduler, nullptr);
    EXPECT_EQ(scheduler->name(), to_string(kind));
  }
}

TEST(AllSchedulers, DriveAMultiAgentWorkloadToQuiescence) {
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    Simulator sim(12, {0, 3, 7, 9},
                  [](AgentId) { return std::make_unique<WalkerAgent>(25); });
    const auto scheduler = make_scheduler(kind, 11, sim.agent_count());
    const RunResult result = sim.run(*scheduler);
    EXPECT_TRUE(result.quiescent()) << to_string(kind);
    EXPECT_TRUE(sim.all_halted()) << to_string(kind);
    EXPECT_EQ(sim.metrics().total_moves(), 100u) << to_string(kind);
  }
}

TEST(AllSchedulers, NeverPickADisabledAgent) {
  // Run a mixed workload and assert (via step()) that execution only ever
  // touches enabled agents — the simulator throws on a non-head pick.
  for (const SchedulerKind kind : all_scheduler_kinds()) {
    Simulator sim(10, {0, 2, 4, 8}, [](AgentId id) -> std::unique_ptr<AgentProgram> {
      if (id % 2 == 0) return std::make_unique<WalkerAgent>(17);
      return std::make_unique<SitterAgent>(5);
    });
    const auto scheduler = make_scheduler(kind, 23, sim.agent_count());
    scheduler->reset(sim.agent_count());
    EXPECT_NO_THROW({
      while (sim.step(*scheduler)) {
      }
    }) << to_string(kind);
  }
}

}  // namespace
}  // namespace udring::sim
