// Tests for sim/export.h: the JSON writer must produce well-formed, complete
// output that round-trips the observable state.

#include "sim/export.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/scheduler.h"
#include "support/test_agents.h"

namespace udring::sim {
namespace {

using test::SuspenderAgent;
using test::WalkerAgent;

// A tiny structural validator: balanced braces/brackets outside strings,
// no trailing commas before closers.
void expect_well_formed(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  char previous = '\0';
  for (const char c : json) {
    if (in_string) {
      if (c == '"' && previous != '\\') in_string = false;
    } else {
      if (c == '"') in_string = true;
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        ASSERT_NE(previous, ',') << "trailing comma in: " << json;
        --depth;
      }
      ASSERT_GE(depth, 0);
    }
    previous = c;
  }
  EXPECT_EQ(depth, 0) << json;
  EXPECT_FALSE(in_string);
}

std::unique_ptr<Simulator> make_finished_sim() {
  auto sim = std::make_unique<Simulator>(
      8, std::vector<NodeId>{0, 4},
      [](AgentId id) -> std::unique_ptr<AgentProgram> {
        if (id == 0) return std::make_unique<WalkerAgent>(4, true);
        return std::make_unique<SuspenderAgent>();
      });
  RoundRobinScheduler scheduler;
  (void)sim->run(scheduler);
  return sim;
}

TEST(Export, SnapshotJsonIsWellFormedAndComplete) {
  const auto sim_ptr = make_finished_sim();
  const Simulator& sim = *sim_ptr;
  const std::string json = to_json(sim.snapshot());
  expect_well_formed(json);
  EXPECT_NE(json.find("\"node_count\":8"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"halted\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"suspended\""), std::string::npos);
  EXPECT_NE(json.find("\"tokens\":[1,0,0,0,0,0,0,0]"), std::string::npos);
}

TEST(Export, MetricsJsonCarriesTotals) {
  const auto sim_ptr = make_finished_sim();
  const Simulator& sim = *sim_ptr;
  const std::string json = to_json(sim.metrics());
  expect_well_formed(json);
  EXPECT_NE(json.find("\"total_moves\":4"), std::string::npos);
  EXPECT_NE(json.find("\"agents\":[{"), std::string::npos);
}

TEST(Export, SimulatorJsonCombinesEverything) {
  const auto sim_ptr = make_finished_sim();
  const Simulator& sim = *sim_ptr;
  const std::string json = to_json(sim);
  expect_well_formed(json);
  EXPECT_NE(json.find("\"quiescent\":true"), std::string::npos);
  EXPECT_NE(json.find("\"all_halted\":false"), std::string::npos);
  EXPECT_NE(json.find("\"snapshot\":{"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
}

TEST(Export, EmptyPhasesAndQueuesSerialize) {
  Simulator sim(3, {1}, [](AgentId) { return std::make_unique<WalkerAgent>(0); });
  RoundRobinScheduler scheduler;
  (void)sim.run(scheduler);
  const std::string json = to_json(sim);
  expect_well_formed(json);
  EXPECT_NE(json.find("\"queues\":[[],[],[]]"), std::string::npos);
}

}  // namespace
}  // namespace udring::sim
