// Tests for core/runner.h: the experiment driver that benches and examples
// rely on — factories, goal evaluation per algorithm, and report fields.

#include "core/runner.h"

#include <gtest/gtest.h>

#include "config/generators.h"

namespace udring::core {
namespace {

TEST(Runner, FactoryNamesMatchAlgorithms) {
  for (const Algorithm algorithm :
       {Algorithm::KnownKFull, Algorithm::KnownNFull, Algorithm::KnownKLogMem,
        Algorithm::KnownKLogMemStrict, Algorithm::UnknownRelaxed,
        Algorithm::Rendezvous}) {
    const auto factory = make_program_factory(algorithm, 4, 16);
    const auto program = factory(0);
    ASSERT_NE(program, nullptr);
    EXPECT_FALSE(program->name().empty());
  }
}

TEST(Runner, ReportCarriesAllMetrics) {
  RunSpec spec;
  spec.node_count = 16;
  spec.homes = {0, 1, 2, 3};
  spec.scheduler = sim::SchedulerKind::Synchronous;
  const RunReport report = run_algorithm(Algorithm::KnownKFull, spec);
  EXPECT_TRUE(report.success) << report.failure;
  EXPECT_TRUE(report.result.quiescent());
  EXPECT_GT(report.total_moves, 0u);
  EXPECT_GT(report.makespan, 0u);
  EXPECT_GT(report.scheduler_rounds, 0u);
  EXPECT_GT(report.max_memory_bits, 0u);
  EXPECT_EQ(report.final_positions.size(), 4u);
  EXPECT_FALSE(report.moves_by_phase.empty());
}

TEST(Runner, MakespanTracksSynchronousRounds) {
  // The causal ideal-time clock and the lockstep round count measure the
  // same thing, up to the +1 arrival offset.
  RunSpec spec;
  spec.node_count = 24;
  spec.homes = gen::uniform_homes(24, 4);
  spec.scheduler = sim::SchedulerKind::Synchronous;
  const RunReport report = run_algorithm(Algorithm::KnownKFull, spec);
  ASSERT_TRUE(report.success);
  EXPECT_NEAR(static_cast<double>(report.makespan),
              static_cast<double>(report.scheduler_rounds), 2.0);
}

TEST(Runner, GoalDistinguishesDefinitionOneFromTwo) {
  RunSpec spec;
  spec.node_count = 12;
  spec.homes = {0, 5, 7};
  // The relaxed algorithm suspends — it must FAIL Definition 1's oracle and
  // pass Definition 2's.
  auto simulator = make_simulator(Algorithm::UnknownRelaxed, spec);
  sim::RoundRobinScheduler scheduler;
  (void)simulator->run(scheduler);
  EXPECT_FALSE(sim::UniformDeploymentOracle(true).check_goal(*simulator).ok);
  EXPECT_TRUE(evaluate_goal(Algorithm::UnknownRelaxed, *simulator).ok);
}

TEST(Runner, ActionLimitIsReportedAsFailure) {
  RunSpec spec;
  spec.node_count = 16;
  spec.homes = {0, 1, 2, 3};
  spec.sim_options.max_actions = 10;  // far too few
  const RunReport report = run_algorithm(Algorithm::KnownKFull, spec);
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.failure.find("action limit"), std::string::npos);
}

TEST(Runner, ToStringCoversAllAlgorithms) {
  EXPECT_EQ(to_string(Algorithm::KnownKFull), "known-k-full");
  EXPECT_EQ(to_string(Algorithm::KnownNFull), "known-n-full");
  EXPECT_EQ(to_string(Algorithm::KnownKLogMem), "known-k-logmem");
  EXPECT_EQ(to_string(Algorithm::KnownKLogMemStrict), "known-k-logmem-strict");
  EXPECT_EQ(to_string(Algorithm::UnknownRelaxed), "unknown-relaxed");
  EXPECT_EQ(to_string(Algorithm::Rendezvous), "rendezvous");
}

}  // namespace
}  // namespace udring::core
