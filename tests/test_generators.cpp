// Tests for config/generators.h: every generator must produce valid initial
// configurations (distinct in-range homes) with the structural property it
// advertises (packing, symmetry degree, figure shapes).

#include "config/generators.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/distance_sequence.h"

namespace udring::gen {
namespace {

using udring::core::config_symmetry_degree;
using udring::core::distances_from_positions;

void expect_valid(const std::vector<std::size_t>& homes, std::size_t n,
                  std::size_t k) {
  ASSERT_EQ(homes.size(), k);
  const std::set<std::size_t> distinct(homes.begin(), homes.end());
  EXPECT_EQ(distinct.size(), k) << "homes must be distinct";
  for (const std::size_t home : homes) EXPECT_LT(home, n);
}

TEST(RandomHomes, ValidAndSeedDeterministic) {
  udring::Rng rng1(5), rng2(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = random_homes(30, 7, rng1);
    const auto b = random_homes(30, 7, rng2);
    expect_valid(a, 30, 7);
    EXPECT_EQ(a, b);
  }
}

TEST(RandomHomes, CoversTheWholeRing) {
  udring::Rng rng(9);
  std::set<std::size_t> seen;
  for (int trial = 0; trial < 200; ++trial) {
    for (const std::size_t home : random_homes(10, 3, rng)) seen.insert(home);
  }
  EXPECT_EQ(seen.size(), 10u) << "every node should appear as a home";
}

TEST(RandomHomes, RejectsTooManyAgents) {
  udring::Rng rng(1);
  EXPECT_THROW((void)random_homes(4, 5, rng), std::invalid_argument);
}

TEST(PackedQuarter, MatchesTheoremOneWitness) {
  const auto homes = packed_quarter_homes(16, 4);
  expect_valid(homes, 16, 4);
  for (const std::size_t home : homes) {
    EXPECT_LT(home, 4u) << "all homes inside the first quarter arc";
  }
  EXPECT_THROW((void)packed_quarter_homes(16, 5), std::invalid_argument);
}

TEST(HomesFromDistances, RoundTripsWithDistances) {
  const udring::core::DistanceSeq d = {1, 4, 2, 1, 2, 2};
  const auto homes = homes_from_distances(d, 12);
  expect_valid(homes, 12, 6);
  // Recovered distance sequence is a rotation of the input.
  const auto recovered = distances_from_positions(homes, 12);
  bool is_rotation = false;
  for (std::size_t x = 0; x < d.size(); ++x) {
    is_rotation = is_rotation || (udring::core::shift(d, x) == recovered);
  }
  EXPECT_TRUE(is_rotation);
  EXPECT_THROW((void)homes_from_distances({1, 2}, 12), std::invalid_argument);
}

TEST(UniformHomes, ProducesUniformDeployments) {
  for (const auto& [n, k] : {std::make_tuple(12, 4), std::make_tuple(14, 4),
                             std::make_tuple(9, 3), std::make_tuple(10, 10)}) {
    const auto homes =
        uniform_homes(static_cast<std::size_t>(n), static_cast<std::size_t>(k));
    expect_valid(homes, static_cast<std::size_t>(n), static_cast<std::size_t>(k));
    const auto d = distances_from_positions(homes, static_cast<std::size_t>(n));
    for (const std::size_t gap : d) {
      EXPECT_GE(gap, static_cast<std::size_t>(n / k));
      EXPECT_LE(gap, static_cast<std::size_t>(n / k) + 1);
    }
  }
}

class PeriodicHomesSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::size_t>> {
};

TEST_P(PeriodicHomesSweep, RealizesExactSymmetryDegree) {
  const auto [n, k, l] = GetParam();
  udring::Rng rng(n * 131 + k * 17 + l);
  for (int trial = 0; trial < 10; ++trial) {
    const auto homes = periodic_homes(n, k, l, rng);
    expect_valid(homes, n, k);
    EXPECT_EQ(config_symmetry_degree(homes, n), l);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PeriodicHomesSweep,
                         ::testing::Values(std::make_tuple(12, 6, 2),
                                           std::make_tuple(12, 6, 3),
                                           std::make_tuple(24, 8, 2),
                                           std::make_tuple(24, 8, 4),
                                           std::make_tuple(36, 12, 6),
                                           std::make_tuple(48, 16, 8),
                                           std::make_tuple(40, 10, 5),
                                           std::make_tuple(60, 12, 4)));

TEST(PeriodicHomes, FullSymmetryIsUniform) {
  udring::Rng rng(3);
  const auto homes = periodic_homes(24, 8, 8, rng);
  EXPECT_EQ(config_symmetry_degree(homes, 24), 8u);
}

TEST(PeriodicHomes, RejectsImpossibleParameters) {
  udring::Rng rng(1);
  EXPECT_THROW((void)periodic_homes(12, 6, 4, rng), std::invalid_argument)
      << "l = 4 does not divide k = 6";
  EXPECT_THROW((void)periodic_homes(10, 4, 4, rng), std::invalid_argument)
      << "l = 4 does not divide n = 10";
  EXPECT_THROW((void)periodic_homes(4, 8, 2, rng), std::invalid_argument)
      << "k/l = 4 agents cannot fit on n/l = 2 nodes";
}

TEST(FigureConfigs, MatchThePaperExactly) {
  // Fig 1(a): aperiodic, l = 1.
  EXPECT_EQ(config_symmetry_degree(fig1a_homes(), kFig1aNodes), 1u);
  EXPECT_EQ(distances_from_positions(fig1a_homes(), kFig1aNodes),
            (udring::core::DistanceSeq{1, 4, 2, 1, 2, 2}));
  // Fig 1(b): l = 2 with factor (1,2,3).
  EXPECT_EQ(config_symmetry_degree(fig1b_homes(), kFig1bNodes), 2u);
  // Fig 5: 9 agents on 18 nodes, three 6-node segments.
  EXPECT_EQ(fig5_homes().size(), 9u);
  EXPECT_EQ(config_symmetry_degree(fig5_homes(), kFig5Nodes), 3u);
  // Fig 9: (11,1,3,1,3,1,3,1,3) — aperiodic with the (1,3)⁴ trap.
  EXPECT_EQ(distances_from_positions(fig9_homes(), kFig9Nodes),
            (udring::core::DistanceSeq{11, 1, 3, 1, 3, 1, 3, 1, 3}));
  EXPECT_EQ(config_symmetry_degree(fig9_homes(), kFig9Nodes), 1u);
  // Fig 11: the (6,2)-ring.
  EXPECT_EQ(config_symmetry_degree(fig11_homes(), kFig11Nodes), 2u);
  // Stress instance: aperiodic but with two-fold base structure.
  EXPECT_EQ(logmem_stress_homes().size(), 6u);
  EXPECT_EQ(config_symmetry_degree(logmem_stress_homes(), kLogmemStressNodes), 1u);
}

TEST(ImpossibilityRing, StructureMatchesFig7) {
  const auto instance = impossibility_ring({0, 1, 5}, 12, 2);
  EXPECT_EQ(instance.node_count, 2u * 2u * 12u + 24u);
  EXPECT_EQ(instance.homes.size(), 9u) << "(q+1) · k agents";
  // Copies at offsets 0, 12, 24; nothing in the second half.
  EXPECT_EQ(instance.homes,
            (std::vector<std::size_t>{0, 1, 5, 12, 13, 17, 24, 25, 29}));
  for (const std::size_t home : instance.homes) {
    EXPECT_LT(home, 36u) << "the tail [qn+n, 2qn+2n) must be empty";
  }
}

}  // namespace
}  // namespace udring::gen
