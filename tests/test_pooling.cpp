// Pooled-reuse regression suite for the Instance × ExecutionState split.
//
// The contract under test: running an instance through *pooled* machinery —
// a reused ExecutionState arena, a cached/reseeded scheduler, a RunContext,
// run_batch, run_many — is byte-identical (event-log digest, metrics,
// final positions) to running it through freshly constructed objects. A
// scheduler or RNG that carries state across ExecutionState::reset() makes
// reruns correlated; BurstScheduler had exactly that bug (its RNG survived
// reset()), pinned here so it cannot return.

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "core/runner.h"
#include "explore/adversary.h"
#include "exp/campaign.h"
#include "mc/model_check.h"
#include "explore/fuzz.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace udring {
namespace {

core::RunSpec make_spec(std::size_t n, std::size_t k, sim::SchedulerKind kind,
                        std::uint64_t seed) {
  Rng rng(seed);
  core::RunSpec spec;
  spec.node_count = n;
  spec.homes = exp::draw_homes(exp::ConfigFamily::RandomAny, n, k, 1, rng);
  spec.scheduler = kind;
  spec.seed = seed;
  spec.sim_options.record_events = true;
  return spec;
}

void expect_reports_equal(const core::RunReport& a, const core::RunReport& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.result.actions, b.result.actions);
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.max_memory_bits, b.max_memory_bits);
  EXPECT_EQ(a.scheduler_rounds, b.scheduler_rounds);
  EXPECT_EQ(a.moves_by_phase, b.moves_by_phase);
  EXPECT_EQ(a.final_positions, b.final_positions);
  EXPECT_EQ(a.final_labels, b.final_labels);
  EXPECT_EQ(a.failure, b.failure);
}

// ---- pooled RunContext == fresh objects, for every scheduler kind ----------

class PooledRunSweep : public ::testing::TestWithParam<sim::SchedulerKind> {};

TEST_P(PooledRunSweep, BackToBackPooledRunsMatchFreshRuns) {
  for (const core::Algorithm algorithm :
       {core::Algorithm::KnownKFull, core::Algorithm::UnknownRelaxed,
        core::Algorithm::GatherRing, core::Algorithm::DisperseRing}) {
    const core::RunSpec first = make_spec(18, 5, GetParam(), 11);
    const core::RunSpec second = make_spec(24, 4, GetParam(), 12);

    // Fresh-object reference executions.
    const core::RunReport fresh_first = core::run_algorithm(algorithm, first);
    const core::RunReport fresh_second = core::run_algorithm(algorithm, second);
    auto fresh_sim = core::make_simulator(algorithm, second);
    auto fresh_sched = sim::make_scheduler(GetParam(), second.seed,
                                           second.homes.size());
    (void)fresh_sim->run(*fresh_sched);
    const std::uint64_t fresh_digest = fresh_sim->log().digest();

    // Pooled: one context, two runs — the second must not see the first.
    core::RunContext ctx;
    const core::RunReport pooled_first = ctx.run(algorithm, first);
    const core::RunReport pooled_second = ctx.run(algorithm, second);
    expect_reports_equal(pooled_first, fresh_first);
    expect_reports_equal(pooled_second, fresh_second);
    EXPECT_EQ(ctx.state().log().digest(), fresh_digest)
        << core::to_string(algorithm) << " under "
        << sim::to_string(GetParam())
        << ": pooled rerun diverged from a fresh run";
  }
}

TEST_P(PooledRunSweep, ReusedSchedulerObjectMatchesFreshScheduler) {
  // The same scheduler object drives two executions of the same spec; the
  // second must equal a fresh scheduler's execution. Catches any mutable
  // scheduler state that survives reset() — the BurstScheduler RNG bug.
  const core::RunSpec spec = make_spec(20, 5, GetParam(), 7);
  const auto run_with = [&](sim::Scheduler& sched) {
    auto sim = core::make_simulator(core::Algorithm::KnownKFull, spec);
    (void)sim->run(sched);
    return sim->log().digest();
  };
  auto reused = sim::make_scheduler(GetParam(), spec.seed, spec.homes.size());
  const std::uint64_t first = run_with(*reused);
  const std::uint64_t rerun = run_with(*reused);
  auto fresh = sim::make_scheduler(GetParam(), spec.seed, spec.homes.size());
  const std::uint64_t reference = run_with(*fresh);
  EXPECT_EQ(first, reference);
  EXPECT_EQ(rerun, reference)
      << sim::to_string(GetParam())
      << " carries state across reset(): pooled reruns are correlated";
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PooledRunSweep,
                         ::testing::ValuesIn(sim::all_scheduler_kinds()),
                         [](const auto& info) {
                           std::string name(sim::to_string(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(SchedulerPooling, BurstSchedulerReseedsItsRngOnReset) {
  // Direct regression for the audit finding: pick sequences after a second
  // reset() must replay the first run's sequence exactly.
  sim::BurstScheduler scheduler(42);
  const std::vector<sim::AgentId> enabled = {0, 1, 2, 3, 4};
  scheduler.reset(5);
  std::vector<sim::AgentId> first;
  for (int i = 0; i < 4; ++i) {
    first.push_back(scheduler.pick(enabled));
    scheduler.reset(5);  // force a re-draw every pick
  }
  scheduler.reset(5);
  std::vector<sim::AgentId> second;
  for (int i = 0; i < 4; ++i) {
    second.push_back(scheduler.pick(enabled));
    scheduler.reset(5);
  }
  EXPECT_EQ(first, second);
}

TEST(SchedulerPooling, DefaultPriorityMatchesExplicitDescendingOrder) {
  const core::RunSpec spec = make_spec(16, 4, sim::SchedulerKind::Priority, 3);
  const auto digest_with = [&](sim::Scheduler& sched) {
    auto sim = core::make_simulator(core::Algorithm::KnownKFull, spec);
    (void)sim->run(sched);
    return sim->log().digest();
  };
  sim::PriorityScheduler pooled_form;  // order derived at reset()
  sim::PriorityScheduler explicit_form({3, 2, 1, 0});
  EXPECT_EQ(digest_with(pooled_form), digest_with(explicit_form));
}

// ---- ExecutionState::reset across sizes -------------------------------------

TEST(ExecutionStatePooling, ResetAcrossSizesMatchesFreshConstruction) {
  const auto factory = core::make_program_factory(core::Algorithm::KnownKFull, 3);
  const auto factory_big =
      core::make_program_factory(core::Algorithm::KnownKFull, 6);
  sim::SimOptions options;
  options.record_events = true;
  const sim::Instance big(40, {0, 7, 14, 21, 28, 35}, factory_big, options);
  const sim::Instance small(9, {0, 3, 6}, factory, options);

  sim::ExecutionState pooled;
  sim::RoundRobinScheduler scheduler;
  // big → small → big: shrinking and regrowing must not leak state.
  for (const sim::Instance* instance : {&big, &small, &big}) {
    pooled.reset(*instance);
    (void)pooled.run(scheduler);
    sim::ExecutionState fresh;
    fresh.reset(*instance);
    sim::RoundRobinScheduler fresh_scheduler;
    (void)fresh.run(fresh_scheduler);
    EXPECT_EQ(pooled.log().digest(), fresh.log().digest());
    EXPECT_EQ(pooled.staying_nodes(), fresh.staying_nodes());
    EXPECT_EQ(pooled.metrics().total_moves(), fresh.metrics().total_moves());
    EXPECT_EQ(pooled.total_tokens(), fresh.total_tokens());
  }
}

TEST(ExecutionStatePooling, DefaultConstructedStateIsUnboundUntilReset) {
  sim::ExecutionState state;
  EXPECT_FALSE(state.bound());
  EXPECT_EQ(state.agent_count(), 0u);
  EXPECT_TRUE(state.quiescent());
  const sim::Instance instance(
      8, {0, 4}, core::make_program_factory(core::Algorithm::KnownKFull, 2));
  state.reset(instance);
  EXPECT_TRUE(state.bound());
  EXPECT_EQ(state.agent_count(), 2u);
  EXPECT_EQ(state.enabled().size(), 2u);
}

// ---- batch drivers ----------------------------------------------------------

TEST(RunBatch, MatchesIndividualRuns) {
  const auto factory = core::make_program_factory(core::Algorithm::KnownKFull, 2);
  const auto factory3 =
      core::make_program_factory(core::Algorithm::KnownKFull, 3);
  sim::SimOptions options;
  options.record_events = true;
  const sim::Instance a(12, {0, 5}, factory, options);
  const sim::Instance b(15, {1, 6, 11}, factory3, options);
  const sim::Instance c(7, {2, 4}, factory, options);
  const std::vector<const sim::Instance*> batch = {&a, &b, &c};

  sim::RoundRobinScheduler scheduler;
  sim::ExecutionState state;
  std::vector<std::uint64_t> digests;
  std::vector<std::vector<sim::NodeId>> positions;
  const std::size_t executed = sim::run_batch(
      state, batch, [&](std::size_t) -> sim::Scheduler& { return scheduler; },
      [&](std::size_t, const sim::ExecutionState& finished,
          const sim::RunResult& result) {
        EXPECT_TRUE(result.quiescent());
        digests.push_back(finished.log().digest());
        positions.push_back(finished.staying_nodes());
      });
  ASSERT_EQ(executed, 3u);

  for (std::size_t i = 0; i < batch.size(); ++i) {
    sim::ExecutionState fresh;
    fresh.reset(*batch[i]);
    sim::RoundRobinScheduler fresh_scheduler;
    (void)fresh.run(fresh_scheduler);
    EXPECT_EQ(digests[i], fresh.log().digest()) << "batch item " << i;
    EXPECT_EQ(positions[i], fresh.staying_nodes()) << "batch item " << i;
  }
}

TEST(RunMany, MatchesRunAlgorithmPerSpec) {
  std::vector<core::RunSpec> specs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    specs.push_back(make_spec(10 + 2 * static_cast<std::size_t>(seed), 3,
                              sim::SchedulerKind::RoundRobin, seed));
  }
  const std::vector<core::RunReport> pooled =
      core::run_many(core::Algorithm::KnownKFull, specs, 2);
  ASSERT_EQ(pooled.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const core::RunReport fresh =
        core::run_algorithm(core::Algorithm::KnownKFull, specs[i]);
    expect_reports_equal(pooled[i], fresh);
  }
}

TEST(RunMany, LaneBatchedEngineMatchesScalarEngine) {
  // run_many's lanes > 1 path routes every spec through a BatchArena with
  // per-lane retirement; the reports (including scheduler_rounds, which the
  // retire callback reads off the lane's scheduler) must be byte-identical
  // to the scalar RunContext engine at any worker x lane combination. Mix
  // scheduler kinds and seeds so lanes genuinely interleave unequal-length
  // runs.
  std::vector<core::RunSpec> specs;
  std::uint64_t seed = 1;
  for (const sim::SchedulerKind kind :
       {sim::SchedulerKind::RoundRobin, sim::SchedulerKind::Random,
        sim::SchedulerKind::Synchronous, sim::SchedulerKind::Burst}) {
    for (const std::size_t n : {14u, 22u}) {
      specs.push_back(make_spec(n, 3, kind, seed++));
    }
  }
  for (const core::Algorithm algorithm :
       {core::Algorithm::KnownKFull, core::Algorithm::UnknownRelaxed}) {
    const std::vector<core::RunReport> scalar =
        core::run_many(algorithm, specs, 1, 1);
    ASSERT_EQ(scalar.size(), specs.size());
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2}}) {
      for (const std::size_t lanes : {std::size_t{2}, std::size_t{3}}) {
        const std::vector<core::RunReport> batched =
            core::run_many(algorithm, specs, workers, lanes);
        ASSERT_EQ(batched.size(), specs.size());
        for (std::size_t i = 0; i < specs.size(); ++i) {
          SCOPED_TRACE(std::string(core::to_string(algorithm)) + " spec " +
                       std::to_string(i) + " workers " +
                       std::to_string(workers) + " lanes " +
                       std::to_string(lanes));
          expect_reports_equal(batched[i], scalar[i]);
        }
      }
    }
  }
}

// ---- pooled mc explorer walks -----------------------------------------------

TEST(McPooling, InterleavedChecksAreByteIdenticalToIsolatedOnes) {
  // mc::check reuses one pooled ExecutionState per worker across ALL of that
  // worker's shards (thousands of reset()+replay cycles on the same arena).
  // Any state that survives reset() — a stale mailbox, token count, queue
  // arrival stamp — would skew digests and change dedup behaviour. Pin:
  // checking A, then a differently-shaped B, then A again yields
  // byte-identical reports for both A runs, equal to a first-call report.
  const auto request = [](std::size_t n, std::vector<std::size_t> homes) {
    mc::CheckRequest r;
    r.algorithm = core::Algorithm::KnownKFull;
    r.node_count = n;
    r.homes = std::move(homes);
    return r;
  };
  mc::McOptions options;
  options.frontier_target = 6;  // force the sharded path: real shard reuse
  options.workers = 2;
  const mc::ModelCheckReport first = mc::check(request(8, {0, 3, 6}), options);
  const mc::ModelCheckReport other = mc::check(request(10, {0, 5}), options);
  const mc::ModelCheckReport again = mc::check(request(8, {0, 3, 6}), options);
  EXPECT_TRUE(first.ok);
  EXPECT_TRUE(other.ok);
  EXPECT_EQ(first.digest(), again.digest());
  EXPECT_EQ(first.stats.states_expanded, again.stats.states_expanded);
  EXPECT_EQ(first.stats.states_deduped, again.stats.states_deduped);
  EXPECT_EQ(first.stats.sleep_pruned, again.stats.sleep_pruned);
  EXPECT_EQ(first.stats.dpor_pruned, again.stats.dpor_pruned);
  EXPECT_EQ(first.stats.total_actions, again.stats.total_actions);
}

// ---- draw_batch reseed audit: lane-pooled explore schedulers ----------------

/// The five sim/ kinds take the devirtualized draw_batch overload; the
/// explore adversaries fall back to the kind-less virtual one.
std::optional<sim::SchedulerKind> devirtualized_kind(
    explore::ExploreSchedulerKind kind) {
  switch (kind) {
    case explore::ExploreSchedulerKind::RoundRobin:
      return sim::SchedulerKind::RoundRobin;
    case explore::ExploreSchedulerKind::Random:
      return sim::SchedulerKind::Random;
    case explore::ExploreSchedulerKind::Synchronous:
      return sim::SchedulerKind::Synchronous;
    case explore::ExploreSchedulerKind::Priority:
      return sim::SchedulerKind::Priority;
    case explore::ExploreSchedulerKind::Burst:
      return sim::SchedulerKind::Burst;
    default:
      return std::nullopt;
  }
}

/// Drives `state` to quiescence drawing every action through
/// Scheduler::draw_batch — the exact per-action sequence a BatchArena lane
/// performs (attach, reset, then one draw per step_chosen).
std::uint64_t drive_via_draw_batch(sim::ExecutionState& state,
                                   sim::Scheduler& scheduler,
                                   std::optional<sim::SchedulerKind> kind,
                                   std::size_t agent_count) {
  scheduler.attach(state);
  scheduler.reset(agent_count);
  std::size_t actions = 0;
  while (!state.enabled().empty()) {
    const sim::AgentId id =
        kind ? sim::Scheduler::draw_batch(scheduler, *kind, state.enabled())
             : sim::Scheduler::draw_batch(scheduler, state.enabled());
    state.step_chosen(id);
    if (++actions > 200000u) {
      ADD_FAILURE() << "run did not quiesce";
      break;
    }
  }
  return state.log().digest();
}

class DrawBatchReseedSweep
    : public ::testing::TestWithParam<explore::ExploreSchedulerKind> {};

TEST_P(DrawBatchReseedSweep, LanePooledSchedulerMatchesFreshPerScenario) {
  // The lane-pool contract: ONE scheduler object reused across scenarios —
  // reseed(seed) + attach + reset per scenario, every draw through
  // draw_batch — is byte-identical to constructing a fresh
  // make_explore_scheduler for each scenario and letting
  // ExecutionState::run drive it. Both the reseed contract and the
  // draw_batch ≡ pick equivalence are under test, for every kind.
  const core::RunSpec specs[] = {make_spec(18, 5, sim::SchedulerKind::RoundRobin, 21),
                                 make_spec(24, 4, sim::SchedulerKind::RoundRobin, 22),
                                 make_spec(16, 3, sim::SchedulerKind::RoundRobin, 23)};
  const std::optional<sim::SchedulerKind> kind = devirtualized_kind(GetParam());

  // Lane-pooled: one scheduler, one state, reused across all scenarios.
  std::unique_ptr<sim::Scheduler> pooled = explore::make_explore_scheduler(
      GetParam(), specs[0].seed, specs[0].homes.size());
  sim::ExecutionState lane_state;

  for (const core::RunSpec& spec : specs) {
    const sim::Instance pooled_instance =
        core::make_instance(core::Algorithm::KnownKFull, spec);
    lane_state.reset(pooled_instance);
    pooled->reseed(spec.seed);
    const std::uint64_t pooled_digest = drive_via_draw_batch(
        lane_state, *pooled, kind, spec.homes.size());

    // Fresh per-scenario reference: new scheduler, new state, plain run().
    auto fresh = explore::make_explore_scheduler(GetParam(), spec.seed,
                                                 spec.homes.size());
    const sim::Instance fresh_instance =
        core::make_instance(core::Algorithm::KnownKFull, spec);
    sim::ExecutionState fresh_state;
    fresh_state.reset(fresh_instance);
    const sim::RunResult fresh_result = fresh_state.run(*fresh);

    EXPECT_TRUE(fresh_result.quiescent());
    EXPECT_EQ(pooled_digest, fresh_state.log().digest())
        << explore::to_string(GetParam()) << " n=" << spec.node_count
        << ": lane-pooled reseed diverged from a fresh scheduler";
    EXPECT_EQ(lane_state.staying_nodes(), fresh_state.staying_nodes());
    EXPECT_EQ(lane_state.metrics().total_moves(),
              fresh_state.metrics().total_moves());
  }
}

INSTANTIATE_TEST_SUITE_P(AllExploreKinds, DrawBatchReseedSweep,
                         ::testing::ValuesIn(explore::all_explore_scheduler_kinds()),
                         [](const auto& info) {
                           std::string name(explore::to_string(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---- pooled fuzz iterations -------------------------------------------------

TEST(FuzzPooling, PooledIterationMatchesOneShot) {
  explore::FuzzOptions options;
  options.algorithm = core::Algorithm::KnownKFull;
  options.iterations = 6;
  options.base_seed = 5;
  sim::ExecutionState reuse;
  for (std::uint64_t i = 0; i < options.iterations; ++i) {
    const explore::FuzzIteration one_shot = explore::fuzz_iteration(options, i);
    const explore::FuzzIteration pooled =
        explore::fuzz_iteration(options, i, &reuse);
    EXPECT_EQ(pooled.digest, one_shot.digest) << "iteration " << i;
    EXPECT_EQ(pooled.actions, one_shot.actions);
    EXPECT_EQ(pooled.failure.has_value(), one_shot.failure.has_value());
  }
}

}  // namespace
}  // namespace udring
