// The ProblemSpec / GoalOracle redesign and the companion problem families.
//
//  - ProblemSpec naming, parsing, and resolve_problem() semantics (Auto →
//    the algorithm's natural problem; parameter normalization).
//  - The deprecated check_uniform_deployment_* wrappers agree byte-for-byte
//    with the oracles they now delegate to.
//  - The goal predicates accept correct final configurations and reject
//    near misses with pinned reason strings (gtest messages and the
//    shrinker's prefix classes both depend on the exact wording).
//  - The new core families: g-partial gathering gathers into groups of >= g
//    (or proves the instance unsolvable and halts at home), dispersion
//    settles one agent per node, across schedulers and instance draws.
//  - Cross-problem verification: mc::check judges any algorithm against any
//    problem, byte-identically at any worker count, and a mismatch (a
//    gatherer judged as a deployer) yields a replayable counterexample.
//  - ScheduleTrace carries the problem: round-trips through text, and the
//    pre-problem corpus in tests/schedules/ still parses, re-serializes,
//    and replays byte-identically — including the planted non-FIFO
//    double-booked-base-node regression.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/problem.h"
#include "core/runner.h"
#include "exp/campaign.h"
#include "explore/fuzz.h"
#include "explore/shrink.h"
#include "explore/trace.h"
#include "mc/model_check.h"
#include "sim/checker.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace udring {
namespace {

// ---- naming and resolution --------------------------------------------------

TEST(ProblemSpec, NamesRoundTrip) {
  for (const core::Problem kind :
       {core::Problem::Auto, core::Problem::Deploy, core::Problem::Gather,
        core::Problem::Disperse}) {
    EXPECT_EQ(core::problem_from_name(core::to_string(kind)), kind);
  }
  EXPECT_THROW((void)core::problem_from_name("rendezvous"),
               std::invalid_argument);
  EXPECT_THROW((void)core::problem_from_name(""), std::invalid_argument);
}

TEST(ProblemSpec, ToStringShowsGatherParameter) {
  EXPECT_EQ(core::to_string(core::ProblemSpec{core::Problem::Gather, 2}),
            "gather(g=2)");
  EXPECT_EQ(core::to_string(core::ProblemSpec{core::Problem::Gather, 0}),
            "gather");
  EXPECT_EQ(core::to_string(core::ProblemSpec{core::Problem::Deploy, 0}),
            "deploy");
  EXPECT_EQ(core::to_string(core::ProblemSpec{}), "auto");
}

TEST(ProblemSpec, ResolveAutoPicksTheNaturalProblem) {
  for (const core::Algorithm deployer :
       {core::Algorithm::KnownKFull, core::Algorithm::KnownNFull,
        core::Algorithm::KnownKLogMem, core::Algorithm::KnownKLogMemStrict,
        core::Algorithm::UnknownRelaxed}) {
    const core::ProblemSpec resolved = core::resolve_problem(deployer, {});
    EXPECT_EQ(resolved.kind, core::Problem::Deploy);
    EXPECT_EQ(resolved.gather_g, 0u);
  }
  // Rendezvous gathers totally; GatherRing keeps the requested group size.
  const auto rendezvous = core::resolve_problem(core::Algorithm::Rendezvous, {});
  EXPECT_EQ(rendezvous.kind, core::Problem::Gather);
  EXPECT_EQ(rendezvous.gather_g, 0u);
  const auto gather = core::resolve_problem(core::Algorithm::GatherRing, {});
  EXPECT_EQ(gather.kind, core::Problem::Gather);
  EXPECT_EQ(gather.gather_g, 2u);
  const auto gather5 = core::resolve_problem(
      core::Algorithm::GatherRing, {core::Problem::Gather, 5});
  EXPECT_EQ(gather5.gather_g, 5u);
  const auto disperse = core::resolve_problem(core::Algorithm::DisperseRing, {});
  EXPECT_EQ(disperse.kind, core::Problem::Disperse);
}

TEST(ProblemSpec, ResolveNormalizesForeignParameters) {
  // gather_g belongs to Gather only; explicit non-gather kinds zero it so
  // specs (and CellKeys built from them) compare cleanly.
  const auto deploy = core::resolve_problem(core::Algorithm::GatherRing,
                                            {core::Problem::Deploy, 7});
  EXPECT_EQ(deploy.kind, core::Problem::Deploy);
  EXPECT_EQ(deploy.gather_g, 0u);
  const auto disperse = core::resolve_problem(core::Algorithm::KnownKFull,
                                              {core::Problem::Disperse, 3});
  EXPECT_EQ(disperse.gather_g, 0u);
}

TEST(ProblemSpec, OracleNamesMatchTheResolvedProblem) {
  EXPECT_EQ(core::make_goal_oracle(core::Algorithm::KnownKFull)->name(),
            "uniform-deployment");
  EXPECT_EQ(core::make_goal_oracle(core::Algorithm::UnknownRelaxed)->name(),
            "uniform-deployment-relaxed");
  EXPECT_EQ(core::make_goal_oracle(core::Algorithm::Rendezvous)->name(),
            "rendezvous");
  EXPECT_EQ(core::make_goal_oracle(core::Algorithm::GatherRing)->name(),
            "g-partial-gathering");
  EXPECT_EQ(core::make_goal_oracle(core::Algorithm::DisperseRing)->name(),
            "dispersion");
  // The problem overrides the algorithm's natural goal.
  EXPECT_EQ(core::make_goal_oracle(core::Algorithm::KnownKFull,
                                   {core::Problem::Disperse, 0})
                ->name(),
            "dispersion");
}

// ---- deprecated wrappers delegate to the oracles ----------------------------

/// Runs `algorithm` on (n, homes) under a synchronous scheduler and returns
/// the quiesced simulator for direct oracle inspection.
std::unique_ptr<sim::Simulator> run_to_quiescence(
    core::Algorithm algorithm, std::size_t n, std::vector<std::size_t> homes,
    const core::ProblemSpec& problem = {}) {
  core::RunSpec spec;
  spec.node_count = n;
  spec.homes = std::move(homes);
  spec.seed = 7;
  spec.problem = problem;
  auto sim = core::make_simulator(algorithm, spec);
  auto scheduler =
      sim::make_scheduler(spec.scheduler, spec.seed, spec.homes.size());
  (void)sim->run(*scheduler);
  return sim;
}

// This test is the one sanctioned caller of the deprecated wrappers: it
// exists precisely to pin wrapper ≡ oracle until the wrappers are removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(GoalOracle, DeprecatedWrappersMatchTheOracle) {
  const auto sim = run_to_quiescence(core::Algorithm::KnownKFull, 12, {0, 5, 9});
  const sim::CheckResult wrapper =
      sim::check_uniform_deployment_with_termination(*sim);
  const sim::CheckResult oracle =
      sim::UniformDeploymentOracle(true).check_goal(*sim);
  EXPECT_EQ(wrapper.ok, oracle.ok);
  EXPECT_EQ(wrapper.reason, oracle.reason);
  EXPECT_TRUE(oracle.ok) << oracle.reason;

  const auto relaxed =
      run_to_quiescence(core::Algorithm::UnknownRelaxed, 12, {0, 5, 9});
  const sim::CheckResult relaxed_wrapper =
      sim::check_uniform_deployment_without_termination(*relaxed);
  const sim::CheckResult relaxed_oracle =
      sim::UniformDeploymentOracle(false).check_goal(*relaxed);
  EXPECT_EQ(relaxed_wrapper.ok, relaxed_oracle.ok);
  EXPECT_EQ(relaxed_wrapper.reason, relaxed_oracle.reason);
}
#pragma GCC diagnostic pop

TEST(GoalOracle, CheckActionDefaultsToTheModelInvariants) {
  const auto sim = run_to_quiescence(core::Algorithm::KnownKFull, 8, {0, 3});
  const sim::UniformDeploymentOracle oracle(true);
  const sim::CheckResult via_oracle = oracle.check_action(*sim, 0);
  const sim::CheckResult direct = sim::check_model_invariants(*sim, 0);
  EXPECT_EQ(via_oracle.ok, direct.ok);
  EXPECT_EQ(via_oracle.reason, direct.reason);
}

// ---- goal predicates: accepting and near-miss configurations ---------------

TEST(GoalPredicates, PartialGatheringAcceptsAndPinsNearMissReason) {
  // n=6, homes {0, 2}: d-sequences (2,4)/(4,2), period 2 >= g=2 — both
  // agents gather at node 0.
  const auto sim = run_to_quiescence(core::Algorithm::GatherRing, 6, {0, 2});
  EXPECT_TRUE(sim::check_partial_gathering(*sim, 2).ok);
  // The same final configuration is a near miss for g=3: the reason string
  // is pinned (shrinker prefix classes + gtest messages rely on it).
  const sim::CheckResult miss = sim::check_partial_gathering(*sim, 3);
  EXPECT_FALSE(miss.ok);
  EXPECT_EQ(miss.reason,
            "node 0 hosts 2 agent(s); g-partial gathering requires at least 3");
  EXPECT_FALSE(sim::PartialGatheringOracle(3).check_goal(*sim).ok);
}

TEST(GoalPredicates, DispersionAcceptsAndPinsNearMissReason) {
  const auto dispersed =
      run_to_quiescence(core::Algorithm::DisperseRing, 6, {0, 2});
  EXPECT_TRUE(sim::check_dispersed(*dispersed).ok);
  // A gathered configuration is the canonical dispersion near miss.
  const auto gathered =
      run_to_quiescence(core::Algorithm::GatherRing, 6, {0, 2});
  const sim::CheckResult miss = sim::check_dispersed(*gathered);
  EXPECT_FALSE(miss.ok);
  EXPECT_EQ(miss.reason,
            "node 0 hosts 2 settled agents; dispersion requires exactly one");
  EXPECT_FALSE(sim::DispersionOracle().check_goal(*gathered).ok);
}

// ---- the new algorithm families ---------------------------------------------

TEST(GatherRing, GathersIntoGroupsAcrossSchedulersAndDraws) {
  for (const sim::SchedulerKind scheduler :
       {sim::SchedulerKind::Synchronous, sim::SchedulerKind::RoundRobin,
        sim::SchedulerKind::Random}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      Rng rng(seed);
      core::RunSpec spec;
      spec.node_count = 12 + 2 * static_cast<std::size_t>(seed);
      spec.homes = exp::draw_homes(exp::ConfigFamily::RandomAny,
                                   spec.node_count, 4, 1, rng);
      spec.scheduler = scheduler;
      spec.seed = seed;
      const core::RunReport report =
          core::run_algorithm(core::Algorithm::GatherRing, spec);
      EXPECT_TRUE(report.success)
          << sim::to_string(scheduler) << " seed " << seed << ": "
          << report.failure;
      EXPECT_EQ(report.problem.kind, core::Problem::Gather);
      EXPECT_EQ(report.problem.gather_g, 2u);
    }
  }
}

TEST(GatherRing, PeriodicInstanceIsDetectedUnsolvableAndAgentsStayHome) {
  // n=8, homes {0, 4}: d = (4, 4), period 1 < g = 2 — genuinely unsolvable
  // under a symmetric schedule; success means every agent proved it and
  // halted at its home.
  core::RunSpec spec;
  spec.node_count = 8;
  spec.homes = {0, 4};
  spec.seed = 3;
  const core::RunReport report =
      core::run_algorithm(core::Algorithm::GatherRing, spec);
  EXPECT_TRUE(report.success) << report.failure;
  EXPECT_EQ(report.final_positions, (std::vector<std::size_t>{0, 4}));
}

TEST(GatherRing, GroupSizeThreadsThroughRunSpecProblem) {
  // n=9, homes {0, 1, 3}: period 3 >= g=3, one group — total gathering.
  core::RunSpec spec;
  spec.node_count = 9;
  spec.homes = {0, 1, 3};
  spec.seed = 5;
  spec.problem = {core::Problem::Gather, 3};
  const core::RunReport report =
      core::run_algorithm(core::Algorithm::GatherRing, spec);
  EXPECT_TRUE(report.success) << report.failure;
  EXPECT_EQ(report.problem.gather_g, 3u);
  ASSERT_EQ(report.final_positions.size(), 3u);
  EXPECT_EQ(report.final_positions[0], report.final_positions[1]);
  EXPECT_EQ(report.final_positions[1], report.final_positions[2]);
}

TEST(DisperseRing, SettlesOneAgentPerNodeAcrossSchedulersAndDraws) {
  for (const sim::SchedulerKind scheduler :
       {sim::SchedulerKind::Synchronous, sim::SchedulerKind::RoundRobin,
        sim::SchedulerKind::Random}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      Rng rng(seed * 31);
      core::RunSpec spec;
      spec.node_count = 10 + 3 * static_cast<std::size_t>(seed);
      spec.homes = exp::draw_homes(exp::ConfigFamily::RandomAny,
                                   spec.node_count, 5, 1, rng);
      spec.scheduler = scheduler;
      spec.seed = seed;
      const core::RunReport report =
          core::run_algorithm(core::Algorithm::DisperseRing, spec);
      EXPECT_TRUE(report.success)
          << sim::to_string(scheduler) << " seed " << seed << ": "
          << report.failure;
      EXPECT_EQ(report.problem.kind, core::Problem::Disperse);
    }
  }
}

TEST(DisperseRing, FullySymmetricInstanceStaysDispersedInPlace) {
  // Period 1: every agent has rank 0 and settles where it started — already
  // a dispersion.
  core::RunSpec spec;
  spec.node_count = 8;
  spec.homes = {0, 4};
  spec.seed = 2;
  const core::RunReport report =
      core::run_algorithm(core::Algorithm::DisperseRing, spec);
  EXPECT_TRUE(report.success) << report.failure;
  EXPECT_EQ(report.final_positions, (std::vector<std::size_t>{0, 4}));
}

// ---- cross-problem model checking -------------------------------------------

TEST(CrossProblemMc, GatherAndDisperseInstancesVerifyExhaustively) {
  for (const auto& [algorithm, homes] :
       std::vector<std::pair<core::Algorithm, std::vector<std::size_t>>>{
           {core::Algorithm::GatherRing, {0, 2}},   // solvable: period 2
           {core::Algorithm::GatherRing, {0, 3}},   // unsolvable: period 1
           {core::Algorithm::DisperseRing, {0, 2}},
       }) {
    mc::CheckRequest request;
    request.algorithm = algorithm;
    request.node_count = 6;
    request.homes = homes;
    const mc::ModelCheckReport report = mc::check(request);
    EXPECT_TRUE(report.ok) << core::to_string(algorithm) << ": "
                           << report.failure_reason;
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.verdict, "verified");
  }
}

TEST(CrossProblemMc, VerdictAndDigestAreWorkerCountInvariant) {
  for (const core::Algorithm algorithm :
       {core::Algorithm::GatherRing, core::Algorithm::DisperseRing}) {
    mc::CheckRequest request;
    request.algorithm = algorithm;
    request.node_count = 6;
    request.homes = {0, 2};
    // Same shard decomposition (frontier_target), different worker counts:
    // the report digest must be byte-identical.
    mc::McOptions serial;
    serial.frontier_target = 8;
    serial.workers = 1;
    mc::McOptions sharded;
    sharded.frontier_target = 8;
    sharded.workers = 4;
    const mc::ModelCheckReport a = mc::check(request, serial);
    const mc::ModelCheckReport b = mc::check(request, sharded);
    EXPECT_EQ(a.digest(), b.digest()) << core::to_string(algorithm);
    EXPECT_TRUE(a.ok && a.complete) << a.failure_reason;
  }
}

TEST(CrossProblemMc, DeployerVerifiesUnderTheDispersionOracle) {
  // Uniform deployment puts agents on distinct nodes, so a correct deployer
  // is also a disperser — over every schedule.
  mc::CheckRequest request;
  request.algorithm = core::Algorithm::KnownKFull;
  request.problem = {core::Problem::Disperse, 0};
  request.node_count = 6;
  request.homes = {0, 2};
  const mc::ModelCheckReport report = mc::check(request);
  EXPECT_TRUE(report.ok) << report.failure_reason;
  EXPECT_TRUE(report.complete);
}

TEST(CrossProblemMc, GathererUnderDeployOracleYieldsReplayableCounterexample) {
  // GatherRing piles both agents onto one node — a uniform-deployment
  // violation the checker must find and materialize as an ordinary trace.
  mc::CheckRequest request;
  request.algorithm = core::Algorithm::GatherRing;
  request.problem = {core::Problem::Deploy, 0};
  request.node_count = 6;
  request.homes = {0, 2};
  const mc::ModelCheckReport report = mc::check(request);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.verdict, "violation");
  EXPECT_TRUE(report.failure_reason.rfind("goal: ", 0) == 0)
      << report.failure_reason;
  ASSERT_TRUE(report.counterexample.has_value());
  EXPECT_EQ(report.counterexample->problem.kind, core::Problem::Deploy);
  // The counterexample replays stand-alone to the same failure.
  const explore::ReplayOutcome replay =
      explore::replay_trace(*report.counterexample);
  EXPECT_TRUE(replay.failed);
  EXPECT_EQ(replay.digest, report.counterexample->expected_digest);
  // And it survives a text round trip (the corpus path).
  const explore::ScheduleTrace reparsed =
      explore::ScheduleTrace::parse(report.counterexample->to_text());
  EXPECT_EQ(reparsed.problem.kind, core::Problem::Deploy);
  EXPECT_EQ(reparsed.expected_digest, report.counterexample->expected_digest);
}

// ---- campaign grid: the problem axis ----------------------------------------

TEST(CampaignProblemAxis, DefaultAutoAxisReproducesTheHistoricalExpansion) {
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull};
  grid.node_counts = {8, 12};
  grid.agent_counts = {2};
  grid.seeds = 2;
  const exp::CampaignResult implicit = exp::run_campaign(grid);
  exp::CampaignGrid explicit_auto = grid;
  explicit_auto.problems = {core::ProblemSpec{}};
  const exp::CampaignResult explicit_result = exp::run_campaign(explicit_auto);
  EXPECT_EQ(implicit.digest(), explicit_result.digest());
  EXPECT_EQ(implicit.summary(), explicit_result.summary());
  // All-Auto campaigns render the historical table layout (no problem
  // column).
  EXPECT_EQ(implicit.summary().find("problem"), std::string::npos);
}

TEST(CampaignProblemAxis, ProblemCellsArePairedOnTheSameInstances) {
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull};
  grid.problems = {{core::Problem::Deploy, 0}, {core::Problem::Disperse, 0}};
  grid.node_counts = {10};
  grid.agent_counts = {2};
  grid.seeds = 2;
  const std::vector<exp::Scenario> scenarios = exp::expand(grid);
  ASSERT_EQ(scenarios.size(), 4u);
  // The problem never enters the instance substream: scenario (problem=P,
  // rep=r) draws the same homes for every P.
  for (std::size_t rep = 0; rep < 2; ++rep) {
    EXPECT_EQ(exp::scenario_homes(grid, scenarios[rep]),
              exp::scenario_homes(grid, scenarios[2 + rep]));
  }
  const exp::CampaignResult result = exp::run_campaign(grid);
  // A correct deployer satisfies both goals on these instances.
  EXPECT_EQ(result.failures, 0u) << result.summary();
  // An explicit problem axis makes the column appear.
  EXPECT_NE(result.summary().find("problem"), std::string::npos);
  EXPECT_NE(result.summary().find("disperse"), std::string::npos);
}

TEST(CampaignProblemAxis, MismatchedProblemIsReportedNotFatal) {
  exp::CampaignGrid grid;
  grid.algorithms = {core::Algorithm::GatherRing};
  grid.problems = {{core::Problem::Deploy, 0}};
  grid.node_counts = {6};
  grid.agent_counts = {2};
  grid.seeds = 3;
  const exp::CampaignResult result = exp::run_campaign(grid);
  EXPECT_EQ(result.scenario_count, 3u);
  EXPECT_GT(result.failures, 0u);
  ASSERT_FALSE(result.failure_samples.empty());
  EXPECT_NE(result.failure_samples.front().find("problem=deploy"),
            std::string::npos)
      << result.failure_samples.front();
}

// ---- trace provenance and the recorded corpus -------------------------------

TEST(TraceProblem, ProblemKeyRoundTripsThroughText) {
  explore::ScheduleTrace trace;
  trace.algorithm = core::Algorithm::GatherRing;
  trace.node_count = 9;
  trace.homes = {0, 1, 3};
  trace.problem = {core::Problem::Gather, 3};
  trace.seed = 11;
  trace.choices = {0, 1, 2};
  trace.expected_digest = 42;
  const explore::ScheduleTrace reparsed =
      explore::ScheduleTrace::parse(trace.to_text());
  EXPECT_EQ(reparsed.problem.kind, core::Problem::Gather);
  EXPECT_EQ(reparsed.problem.gather_g, 3u);
  EXPECT_EQ(reparsed.to_text(), trace.to_text());

  // Non-gather problems serialize without the parameter and parse back
  // normalized, so text round trips are exact.
  trace.problem = {core::Problem::Disperse, 0};
  const explore::ScheduleTrace disperse =
      explore::ScheduleTrace::parse(trace.to_text());
  EXPECT_EQ(disperse.problem.kind, core::Problem::Disperse);
  EXPECT_EQ(disperse.problem.gather_g, 0u);
  EXPECT_EQ(disperse.to_text(), trace.to_text());
}

TEST(TraceProblem, AutoProblemIsOmittedFromTheTextForm) {
  explore::ScheduleTrace trace;
  trace.algorithm = core::Algorithm::KnownKFull;
  trace.node_count = 8;
  trace.homes = {0, 3};
  trace.seed = 1;
  trace.choices = {0};
  trace.expected_digest = 7;
  EXPECT_EQ(trace.to_text().find("problem"), std::string::npos);
}

TEST(TraceProblem, RecordedTraceCarriesTheRequestProblem) {
  explore::RecordRequest request;
  request.algorithm = core::Algorithm::GatherRing;
  request.problem = {core::Problem::Gather, 2};
  request.node_count = 6;
  request.homes = {0, 2};
  request.seed = 9;
  const explore::ScheduleTrace trace = explore::record_trace(request);
  EXPECT_EQ(trace.problem.kind, core::Problem::Gather);
  EXPECT_EQ(trace.note, "ok");
  const explore::ReplayOutcome replay = explore::replay_trace(trace);
  EXPECT_FALSE(replay.failed) << replay.reason;
  EXPECT_EQ(replay.digest, trace.expected_digest);
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(TraceProblem, PreProblemCorpusIsByteIdentical) {
  // Every pre-redesign trace must parse with problem=Auto, re-serialize to
  // the exact bytes on disk, and replay to its recorded digest — the
  // "old corpus unchanged" acceptance criterion.
  const std::filesystem::path dir = UDRING_SCHEDULES_DIR;
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".trace") continue;
    ++seen;
    const std::string text = read_file(entry.path());
    const explore::ScheduleTrace trace = explore::ScheduleTrace::parse(text);
    EXPECT_EQ(trace.problem.kind, core::Problem::Auto) << entry.path();
    EXPECT_EQ(trace.to_text(), text) << entry.path();
    const explore::ReplayOutcome replay = explore::replay_trace(trace);
    EXPECT_EQ(replay.digest, trace.expected_digest) << entry.path();
    const bool expected_failure = !trace.note.empty() && trace.note != "ok";
    EXPECT_EQ(replay.failed, expected_failure) << entry.path();
  }
  EXPECT_GE(seen, 7u);
}

TEST(TraceProblem, PlantedNonFifoRegressionStillReproduces) {
  // The planted non-FIFO double-booked-base-node repro, end to end: parse,
  // replay, shrink — verdict, reason class, and digest all pinned.
  const std::filesystem::path path =
      std::filesystem::path(UDRING_SCHEDULES_DIR) /
      "fault-strict-basenode-doublebook.trace";
  const explore::ScheduleTrace trace =
      explore::ScheduleTrace::parse(read_file(path));
  const explore::ReplayOutcome replay = explore::replay_trace(trace);
  EXPECT_TRUE(replay.failed);
  EXPECT_EQ(replay.reason, trace.note);
  EXPECT_TRUE(replay.reason.rfind("goal: ", 0) == 0) << replay.reason;
  EXPECT_EQ(replay.digest, trace.expected_digest);
  const explore::ShrinkResult shrunk = explore::shrink_trace(trace);
  EXPECT_TRUE(shrunk.reason.rfind("goal: ", 0) == 0) << shrunk.reason;
  EXPECT_EQ(shrunk.trace.expected_digest, trace.expected_digest);
  EXPECT_EQ(shrunk.trace.note, trace.note);
}

}  // namespace
}  // namespace udring
