// The lock-free shared visited set (src/util/visited_set.h): the structure
// mc::check's shared-visited mode rests its determinism argument on. The
// load-bearing property is claim uniqueness — for every key, exactly ONE
// insert across all racing threads returns Claimed — because mc counts leaf
// work per claimed state; a double claim would double-count (and
// double-explore) a subtree.
//
// The memory-ordering side of the protocol (acquire loads, acq_rel CAS, and
// above all "never skip an empty slot without CASing it") is pinned twice
// more: as herd7 litmus tests under tools/litmus_tests/, and by the CI
// ThreadSanitizer job that runs this binary's stress tests under TSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/visited_set.h"

namespace udring {
namespace {

using Insert = LockFreeVisitedSet::Insert;

// Cheap deterministic 64-bit mixer for generating distinct test keys.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TEST(VisitedSet, FirstInsertClaimsSecondSeesPresent) {
  LockFreeVisitedSet set(1024);
  EXPECT_EQ(set.insert(42), Insert::Claimed);
  EXPECT_EQ(set.insert(42), Insert::Present);
  EXPECT_EQ(set.insert(43), Insert::Claimed);
  EXPECT_EQ(set.size(), 2u);
}

TEST(VisitedSet, ZeroKeyIsALegalKey) {
  // 0 marks empty slots internally; the public contract must not leak that
  // (config digests can be anything). The implementation remaps it.
  LockFreeVisitedSet set(64);
  EXPECT_EQ(set.insert(0), Insert::Claimed);
  EXPECT_EQ(set.insert(0), Insert::Present);
  EXPECT_EQ(set.size(), 1u);
}

TEST(VisitedSet, CapacityRoundsUpToPowerOfTwo) {
  LockFreeVisitedSet set(1000);
  EXPECT_EQ(set.capacity(), 1024u);
  LockFreeVisitedSet tiny(3);
  EXPECT_EQ(tiny.capacity(), 64u);  // floor keeps probe runs meaningful
}

TEST(VisitedSet, ReportsFullInsteadOfLosingKeys) {
  // Past the fill limit every NEW key must say Full (mc downgrades to
  // budget-exhausted); already-claimed keys still answer Present.
  LockFreeVisitedSet set(64);
  std::vector<std::uint64_t> claimed;
  std::uint64_t key = 1;
  while (true) {
    const Insert outcome = set.insert(mix(key++));
    if (outcome == Insert::Full) break;
    ASSERT_EQ(outcome, Insert::Claimed);
    claimed.push_back(mix(key - 1));
    ASSERT_LT(claimed.size(), 100u) << "fill limit never triggered";
  }
  EXPECT_GE(claimed.size(), set.capacity() / 2);
  for (const std::uint64_t k : claimed) {
    EXPECT_EQ(set.insert(k), Insert::Present);
  }
}

TEST(VisitedSetStress, EveryKeyClaimedExactlyOnceAcrossRacingThreads) {
  // The determinism keystone. All threads hammer the SAME key sequence, so
  // every slot is contended; sum of per-thread claim counts must equal the
  // number of distinct keys exactly. Run under TSan in CI.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kKeys = 20000;
  LockFreeVisitedSet set(2 * kKeys);
  std::vector<std::size_t> claims(kThreads, 0);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      std::size_t mine = 0;
      for (std::size_t i = 0; i < kKeys; ++i) {
        if (set.insert(mix(i)) == Insert::Claimed) ++mine;
      }
      claims[t] = mine;
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  std::size_t total = 0;
  for (const std::size_t c : claims) total += c;
  EXPECT_EQ(total, kKeys) << "a key was double-claimed or lost";
  EXPECT_EQ(set.size(), kKeys);
  // (No assertion on how claims spread across threads: on a single-core
  // runner one thread can legitimately drain the whole sequence first.)
}

TEST(VisitedSetStress, DisjointKeyRangesAllClaimTheirOwn) {
  // No contention on keys, full contention on slots (small table): probing
  // threads must never skip over a slot a racer just filled.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 4000;
  LockFreeVisitedSet set(2 * kThreads * kPerThread);
  std::vector<std::size_t> claims(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::size_t mine = 0;
      for (std::size_t i = 0; i < kPerThread; ++i) {
        if (set.insert(mix(t * kPerThread + i)) == Insert::Claimed) ++mine;
      }
      claims[t] = mine;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(claims[t], kPerThread) << "thread " << t << " lost a claim";
  }
  EXPECT_EQ(set.size(), kThreads * kPerThread);
}

}  // namespace
}  // namespace udring
