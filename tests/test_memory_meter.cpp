// Tests for core/memory_meter.h — the bit accounting the paper's memory
// claims are measured with.

#include "core/memory_meter.h"

#include <gtest/gtest.h>

namespace udring::core {
namespace {

TEST(MemoryMeter, EmptyIsZero) { EXPECT_EQ(MemoryMeter{}.bits(), 0u); }

TEST(MemoryMeter, CounterCostsItsBitWidth) {
  EXPECT_EQ(MemoryMeter{}.counter(0).bits(), 1u);
  EXPECT_EQ(MemoryMeter{}.counter(1).bits(), 1u);
  EXPECT_EQ(MemoryMeter{}.counter(255).bits(), 8u);
  EXPECT_EQ(MemoryMeter{}.counter(256).bits(), 9u);
}

TEST(MemoryMeter, FlagCostsOneBit) {
  EXPECT_EQ(MemoryMeter{}.flag().flag().flag().bits(), 3u);
}

TEST(MemoryMeter, ArrayCostsLengthTimesElementWidth) {
  EXPECT_EQ(MemoryMeter{}.array(10, 255).bits(), 80u);
  EXPECT_EQ(MemoryMeter{}.array(0, 1000).bits(), 0u);
  EXPECT_EQ(MemoryMeter{}.array(4, 0).bits(), 4u) << "zero still needs a bit";
}

TEST(MemoryMeter, ChainsAccumulate) {
  const std::size_t bits =
      MemoryMeter{}.counter(100).array(3, 7).flag().counter(1).bits();
  EXPECT_EQ(bits, 7u + 9u + 1u + 1u);
}

TEST(MemoryMeter, MatchesPaperAsymptotics) {
  // Algorithm 1's dominant term: a k-length array of log n-bit distances.
  const std::size_t n = 1024, k = 32;
  const std::size_t algo1 = MemoryMeter{}.array(k, n).counter(n).bits();
  EXPECT_GE(algo1, k * 10);
  // Algorithm 2: a constant number of log n counters.
  const std::size_t algo2 =
      MemoryMeter{}.counter(n).counter(n).counter(k).counter(k).bits();
  EXPECT_LT(algo2 * 8, algo1) << "Θ(log n) ≪ Θ(k log n) at these sizes";
}

}  // namespace
}  // namespace udring::core
