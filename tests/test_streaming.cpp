// Tests for the streaming aggregation path of the campaign engine: the
// streaming fold must be THE SAME computation as the materialized one —
// identical digest(), cells, failure samples and summary on any shared grid
// at any worker count — while holding O(cells + workers) state, and the
// memory budget must skip whole cells deterministically (reported, and
// independent of the worker count so the digest contract survives a binding
// budget).

#include "exp/campaign.h"

#include <gtest/gtest.h>

#include <string>

namespace udring::exp {
namespace {

CampaignGrid shared_grid() {
  CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull, core::Algorithm::UnknownRelaxed};
  grid.families = {ConfigFamily::RandomAny};
  grid.schedulers = {sim::SchedulerKind::RoundRobin, sim::SchedulerKind::Random};
  grid.node_counts = {16, 24, 32};
  grid.agent_counts = {2, 4};
  grid.seeds = 4;
  grid.base_seed = 7;
  return grid;
}

/// Summaries differ only in the reported worker count; erase it to compare.
std::string strip_workers(std::string text, std::size_t workers) {
  const std::string needle = "workers: " + std::to_string(workers);
  const auto at = text.find(needle);
  EXPECT_NE(at, std::string::npos);
  if (at != std::string::npos) text.erase(at, needle.size());
  return text;
}

TEST(StreamingCampaign, MatchesMaterializedAtWorkerCounts) {
  const CampaignGrid grid = shared_grid();
  const CampaignResult reference = run_campaign(grid, {.workers = 1});
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4},
                                    std::size_t{0}}) {  // 0 = hardware
    const CampaignResult streamed =
        run_campaign_streaming(grid, {.workers = workers});
    EXPECT_EQ(streamed.digest(), reference.digest()) << "workers=" << workers;
    EXPECT_EQ(streamed.scenario_count, reference.scenario_count);
    EXPECT_EQ(streamed.scenario_hash, reference.scenario_hash);
    EXPECT_EQ(strip_workers(streamed.summary(), streamed.workers_used),
              strip_workers(reference.summary(), 1))
        << "workers=" << workers;
    ASSERT_EQ(streamed.cells.size(), reference.cells.size());
    auto expected = reference.cells.begin();
    for (const auto& [key, stats] : streamed.cells) {
      EXPECT_EQ(key, expected->first);
      EXPECT_EQ(stats.runs, expected->second.runs);
      EXPECT_EQ(stats.successes, expected->second.successes);
      EXPECT_EQ(stats.moves_sum, expected->second.moves_sum);
      EXPECT_EQ(stats.makespan_sum, expected->second.makespan_sum);
      EXPECT_EQ(stats.memory_bits_sum, expected->second.memory_bits_sum);
      EXPECT_EQ(stats.actions_sum, expected->second.actions_sum);
      ++expected;
    }
  }
}

TEST(StreamingCampaign, HoldsNoPerScenarioState) {
  const CampaignResult streamed = run_campaign_streaming(shared_grid());
  EXPECT_TRUE(streamed.streamed);
  EXPECT_TRUE(streamed.scenarios.empty());
  EXPECT_TRUE(streamed.results.empty());
  EXPECT_GT(streamed.scenario_count, 0u);
}

TEST(StreamingCampaign, FailureSamplesIdenticalAcrossPathsAndWorkers) {
  // An action budget of 1 fails every scenario: both paths must report the
  // same lowest-index samples globally and per cell, at any worker count.
  CampaignGrid grid = shared_grid();
  grid.sim_options.max_actions = 1;
  CampaignOptions options;
  options.max_recorded_failures = 5;
  options.max_failures_per_cell = 2;

  options.workers = 1;
  const CampaignResult materialized = run_campaign(grid, options);
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    options.workers = workers;
    const CampaignResult streamed = run_campaign_streaming(grid, options);
    EXPECT_EQ(streamed.failures, materialized.failures);
    EXPECT_EQ(streamed.failure_samples, materialized.failure_samples);
    ASSERT_EQ(streamed.cells.size(), materialized.cells.size());
    for (const auto& [key, stats] : streamed.cells) {
      const CellStats* expected = materialized.cell(key);
      ASSERT_NE(expected, nullptr);
      EXPECT_LE(stats.failure_samples.size(), options.max_failures_per_cell);
      EXPECT_EQ(stats.failure_samples, expected->failure_samples);
    }
  }
  EXPECT_EQ(materialized.failure_samples.size(), 5u);
}

TEST(StreamingCampaign, ExpansionHelpersAgreeWithExpand) {
  for (CampaignGrid grid :
       {shared_grid(), [] {
          // Infeasible combinations must be skipped identically.
          CampaignGrid g;
          g.algorithms = {core::Algorithm::KnownKFull};
          g.families = {ConfigFamily::Packed, ConfigFamily::Periodic};
          g.node_counts = {16, 24};
          g.agent_counts = {2, 4, 5, 6, 20};
          g.symmetries = {1, 2, 3};
          g.seeds = 3;
          return g;
        }()}) {
    const std::vector<Scenario> scenarios = expand(grid);
    const std::vector<CellKey> cells = expand_cells(grid);
    ASSERT_EQ(expansion_size(grid), scenarios.size());
    ASSERT_EQ(cells.size() * grid.seeds, scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const Scenario at = scenario_at(cells, grid.seeds, i);
      EXPECT_EQ(at.index, scenarios[i].index);
      EXPECT_EQ(at.algorithm, scenarios[i].algorithm);
      EXPECT_EQ(at.family, scenarios[i].family);
      EXPECT_EQ(at.scheduler, scenarios[i].scheduler);
      EXPECT_EQ(at.node_count, scenarios[i].node_count);
      EXPECT_EQ(at.agent_count, scenarios[i].agent_count);
      EXPECT_EQ(at.symmetry, scenarios[i].symmetry);
      EXPECT_EQ(at.repetition, scenarios[i].repetition);
    }
  }
}

TEST(StreamingCampaign, MemoryBudgetSkipsTrailingCellsDeterministically) {
  CampaignGrid grid = shared_grid();  // 2 algos × 2 scheds × 3 n × 2 k = 24 cells
  const std::vector<CellKey> cells = expand_cells(grid);
  ASSERT_EQ(cells.size(), 24u);

  CampaignOptions options;
  // Budget for exactly 5 cells.
  options.memory_budget_bytes = 5 * streaming_cell_footprint_bytes(options);
  options.workers = 1;
  const CampaignResult budgeted = run_campaign_streaming(grid, options);
  EXPECT_EQ(budgeted.cells_skipped, cells.size() - 5);
  EXPECT_EQ(budgeted.scenarios_skipped, (cells.size() - 5) * grid.seeds);
  EXPECT_EQ(budgeted.scenario_count, 5 * grid.seeds);
  EXPECT_EQ(budgeted.cells.size(), 5u);
  // Admitted cells are exactly the expansion-order prefix.
  for (std::size_t c = 0; c < 5; ++c) {
    EXPECT_NE(budgeted.cell(cells[c]), nullptr) << "cell " << c;
  }
  EXPECT_FALSE(budgeted.skipped_cell_samples.empty());
  EXPECT_EQ(budgeted.skipped_cell_samples.front(), cells[5]);
  EXPECT_NE(budgeted.summary().find("SKIPPED"), std::string::npos);

  // The skip decision depends only on (grid, options) — never the worker
  // count — so the digest contract holds even when the budget binds.
  options.workers = 4;
  EXPECT_EQ(run_campaign_streaming(grid, options).digest(), budgeted.digest());

  // Unbudgeted runs report nothing skipped.
  const CampaignResult full = run_campaign_streaming(grid, {.workers = 1});
  EXPECT_EQ(full.cells_skipped, 0u);
  EXPECT_EQ(full.summary().find("SKIPPED"), std::string::npos);
}

TEST(StreamingCampaign, MeasureCellUnchangedByStreamingPath) {
  // measure_cell now rides the streaming path; its averages must still match
  // an explicit materialized campaign of the same cell.
  const Averages direct = measure_cell(core::Algorithm::KnownKFull,
                                       ConfigFamily::RandomAny, 32, 4, 1, 5);
  CampaignGrid grid;
  grid.algorithms = {core::Algorithm::KnownKFull};
  grid.node_counts = {32};
  grid.agent_counts = {4};
  grid.seeds = 5;
  const Averages materialized = run_campaign(grid).averages(
      CellKey{core::Algorithm::KnownKFull, ConfigFamily::RandomAny,
              sim::SchedulerKind::Synchronous, 32, 4, 1});
  EXPECT_EQ(direct.runs, materialized.runs);
  EXPECT_EQ(direct.moves, materialized.moves);
  EXPECT_EQ(direct.makespan, materialized.makespan);
  EXPECT_EQ(direct.memory_bits, materialized.memory_bits);
  EXPECT_EQ(direct.success_rate, materialized.success_rate);
}

}  // namespace
}  // namespace udring::exp
