// Record/replay determinism (the explorer's foundation) and the
// tests/schedules/ regression corpus.
//
//  - For every scheduler kind — the five sim/ families and the three
//    adversaries — recording an execution and replaying its choice sequence
//    must reproduce an identical event-log digest (the PR's round-trip
//    acceptance criterion).
//  - Every trace in tests/schedules/ must replay to its recorded digest and
//    outcome. The corpus pins real executions (including an adversarial
//    fifo-stress schedule) against behavioural drift in the simulator,
//    the schedulers, or the algorithms: any change to the action semantics
//    shows up here as a digest mismatch before it shows up anywhere subtler.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/runner.h"
#include "exp/campaign.h"
#include "explore/fuzz.h"
#include "explore/replay.h"
#include "explore/trace.h"
#include "util/rng.h"

namespace udring::explore {
namespace {

std::vector<std::size_t> draw_instance_homes(std::size_t n, std::size_t k,
                                             std::uint64_t seed) {
  Rng rng(seed);
  return exp::draw_homes(exp::ConfigFamily::RandomAny, n, k, 1, rng);
}

// ---- round-trip determinism for every scheduler kind ------------------------

class RoundTrip : public ::testing::TestWithParam<ExploreSchedulerKind> {};

TEST_P(RoundTrip, RecordThenReplayReproducesDigest) {
  for (const core::Algorithm algorithm :
       {core::Algorithm::KnownKFull, core::Algorithm::KnownKLogMem,
        core::Algorithm::UnknownRelaxed}) {
    const auto homes = draw_instance_homes(18, 5, 11);
    const ScheduleTrace trace =
        record_trace(algorithm, 18, homes, GetParam(), /*seed=*/42);
    EXPECT_EQ(trace.note, "ok") << core::to_string(algorithm) << " under "
                                << to_string(GetParam()) << ": " << trace.note;
    EXPECT_FALSE(trace.choices.empty());

    const ReplayOutcome replayed = replay_trace(trace);
    EXPECT_FALSE(replayed.failed) << replayed.reason;
    EXPECT_EQ(replayed.digest, trace.expected_digest)
        << core::to_string(algorithm) << " under " << to_string(GetParam());
    EXPECT_EQ(replayed.actions, trace.choices.size());
  }
}

TEST_P(RoundTrip, RecordingIsDeterministicPerSeed) {
  const auto homes = draw_instance_homes(16, 4, 3);
  const ScheduleTrace a =
      record_trace(core::Algorithm::KnownKFull, 16, homes, GetParam(), 7);
  const ScheduleTrace b =
      record_trace(core::Algorithm::KnownKFull, 16, homes, GetParam(), 7);
  EXPECT_EQ(a.choices, b.choices);
  EXPECT_EQ(a.expected_digest, b.expected_digest);
}

TEST_P(RoundTrip, TraceSurvivesTextSerialization) {
  const auto homes = draw_instance_homes(14, 4, 5);
  const ScheduleTrace trace =
      record_trace(core::Algorithm::KnownKFull, 14, homes, GetParam(), 9);
  const ScheduleTrace reparsed = ScheduleTrace::parse(trace.to_text());
  EXPECT_EQ(reparsed.algorithm, trace.algorithm);
  EXPECT_EQ(reparsed.node_count, trace.node_count);
  EXPECT_EQ(reparsed.homes, trace.homes);
  EXPECT_EQ(reparsed.choices, trace.choices);
  EXPECT_EQ(reparsed.expected_digest, trace.expected_digest);
  EXPECT_EQ(reparsed.generator, trace.generator);
  EXPECT_EQ(reparsed.fault_non_fifo, trace.fault_non_fifo);

  const ReplayOutcome replayed = replay_trace(reparsed);
  EXPECT_EQ(replayed.digest, trace.expected_digest);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, RoundTrip,
                         ::testing::ValuesIn(all_explore_scheduler_kinds()),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---- round-trip determinism for every topology family -----------------------

class TopologyRoundTrip : public ::testing::TestWithParam<FuzzTopology> {};

TEST_P(TopologyRoundTrip, RecordReplayAndTextSurviveNatively) {
  // The PR-3 provenance axis, closed under record → serialize → parse →
  // replay: an instance recorded natively on a ring / Euler-tree /
  // Eulerian-graph virtual ring must round-trip its digest AND its
  // provenance key (execution depends only on the virtual ring size, so the
  // replay runs stand-alone either way).
  Rng rng(29);
  RecordRequest request;
  request.algorithm = core::Algorithm::KnownKFull;
  request.kind = ExploreSchedulerKind::FifoStress;
  request.seed = 5;
  if (GetParam() == FuzzTopology::Ring) {
    request.node_count = 14;
    request.homes = draw_instance_homes(14, 4, 13);
  } else {
    // The same draw the fuzzer and both CLIs use (explore::draw_instance),
    // so this suite round-trips exactly the instance family they emit.
    DrawnInstance drawn = draw_instance(GetParam(), 8, 3, rng);
    request.node_count = drawn.node_count;
    request.homes = std::move(drawn.homes);
    request.topology = std::move(drawn.topology);
  }
  const ScheduleTrace trace = record_trace(request);
  EXPECT_EQ(trace.note, "ok") << trace.note;
  EXPECT_EQ(trace.topology, request.topology.empty()
                                ? "ring"
                                : std::string(request.topology.name()));
  EXPECT_FALSE(trace.choices.empty());

  const ScheduleTrace reparsed = ScheduleTrace::parse(trace.to_text());
  EXPECT_EQ(reparsed.topology, trace.topology);
  EXPECT_EQ(reparsed.node_count, trace.node_count);
  EXPECT_EQ(reparsed.homes, trace.homes);
  EXPECT_EQ(reparsed.choices, trace.choices);

  const ReplayOutcome replayed = replay_trace(reparsed);
  EXPECT_FALSE(replayed.failed) << replayed.reason;
  EXPECT_EQ(replayed.digest, trace.expected_digest);
  EXPECT_EQ(replayed.actions, trace.choices.size());
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyRoundTrip,
                         ::testing::Values(FuzzTopology::Ring,
                                           FuzzTopology::Tree,
                                           FuzzTopology::Graph),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---- regression corpus ------------------------------------------------------

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(UDRING_SCHEDULES_DIR)) {
    if (entry.path().extension() == ".trace") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ScheduleCorpus, CoversAdversariesAndEveryTopologyFamily) {
  const auto files = corpus_files();
  EXPECT_GE(files.size(), 7u);
  bool fifo_stress = false;
  bool euler_tree = false;
  bool euler_graph = false;
  for (const auto& file : files) {
    std::ifstream in(file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const ScheduleTrace trace = ScheduleTrace::parse(buffer.str());
    fifo_stress = fifo_stress || trace.generator == "fifo-stress";
    euler_tree = euler_tree || trace.topology == "euler-tree";
    euler_graph = euler_graph || trace.topology == "euler-graph";
  }
  EXPECT_TRUE(fifo_stress)
      << "corpus must include an adversarial fifo-stress trace";
  EXPECT_TRUE(euler_tree) << "corpus must include an euler-tree trace";
  EXPECT_TRUE(euler_graph) << "corpus must include an euler-graph trace";
}

TEST(ScheduleCorpus, EveryTraceReplaysToItsRecordedDigest) {
  for (const auto& file : corpus_files()) {
    std::ifstream in(file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    SCOPED_TRACE(file.filename().string());
    const ScheduleTrace trace = ScheduleTrace::parse(buffer.str());
    const ReplayOutcome outcome = replay_trace(trace);
    EXPECT_EQ(outcome.digest, trace.expected_digest)
        << "replay diverged from the recorded execution";
    EXPECT_EQ(outcome.failed, trace.note != "ok")
        << "outcome drifted: " << outcome.reason;
  }
}

// ---- replay mechanics -------------------------------------------------------

TEST(ReplayScheduler, PadsExhaustedTraceWithFallback) {
  ReplayScheduler scheduler({2, 1});
  scheduler.reset(3);
  const std::vector<sim::AgentId> enabled = {5, 1, 9};
  EXPECT_EQ(scheduler.pick(enabled), 9u);  // sorted {1,5,9}[2]
  EXPECT_EQ(scheduler.pick(enabled), 5u);  // sorted {1,5,9}[1]
  EXPECT_EQ(scheduler.pick(enabled), 1u);  // exhausted -> index 0
  EXPECT_EQ(scheduler.consumed(), 3u);
  // Lenient mode is the shrinker's contract: padding and wrapping stay
  // silent, so a mutated trace is always a complete schedule.
  EXPECT_FALSE(scheduler.diverged());
  EXPECT_EQ(scheduler.divergence(), "");
}

TEST(ReplayScheduler, ReducesChoicesModuloEnabledCount) {
  ReplayScheduler scheduler({7});
  scheduler.reset(2);
  EXPECT_EQ(scheduler.pick({4, 2}), 4u);  // sorted {2,4}[7 % 2 = 1]
  EXPECT_FALSE(scheduler.diverged());
}

TEST(ReplayScheduler, StrictModeReportsExhaustedTrace) {
  // The model checker's backtrack contract: the same picks as Lenient (the
  // run proceeds on the fallback so the aftermath is observable), but the
  // exhaustion is reported instead of silently masked.
  ReplayScheduler scheduler({2}, ReplayMode::Strict);
  scheduler.reset(3);
  const std::vector<sim::AgentId> enabled = {5, 1, 9};
  EXPECT_EQ(scheduler.pick(enabled), 9u);
  EXPECT_FALSE(scheduler.diverged());
  EXPECT_EQ(scheduler.pick(enabled), 1u);  // exhausted -> fallback 0
  EXPECT_TRUE(scheduler.diverged());
  EXPECT_EQ(scheduler.divergence(), "trace exhausted at pick 1");
}

TEST(ReplayScheduler, StrictModeReportsOutOfRangeChoice) {
  ReplayScheduler scheduler({1, 7, 5}, ReplayMode::Strict);
  scheduler.reset(2);
  EXPECT_EQ(scheduler.pick({4, 2}), 4u);  // in range: sorted {2,4}[1]
  EXPECT_FALSE(scheduler.diverged());
  EXPECT_EQ(scheduler.pick({4, 2}), 4u);  // 7 wraps to 1, and is reported
  EXPECT_TRUE(scheduler.diverged());
  EXPECT_EQ(scheduler.divergence(),
            "choice 7 out of range at pick 1 (enabled 2)");
  // Only the FIRST divergence is kept (5 out of range too); the run goes on.
  EXPECT_EQ(scheduler.pick({4, 2}), 4u);
  EXPECT_EQ(scheduler.divergence(),
            "choice 7 out of range at pick 1 (enabled 2)");
  // reset() restores a clean slate, per the pooled-reuse contract.
  scheduler.reset(2);
  EXPECT_FALSE(scheduler.diverged());
}

TEST(TraceFormat, RejectsMalformedInput) {
  EXPECT_THROW((void)ScheduleTrace::parse(""), std::invalid_argument);
  EXPECT_THROW((void)ScheduleTrace::parse("not-a-trace v1\nend\n"),
               std::invalid_argument);
  // Missing digest line.
  EXPECT_THROW((void)ScheduleTrace::parse("udring-trace v1\nalgorithm "
                                          "known-k-full\nnodes 8\nhomes 0 "
                                          "2\nchoices 0\nend\n"),
               std::invalid_argument);
  // Duplicate home.
  EXPECT_THROW((void)ScheduleTrace::parse("udring-trace v1\nalgorithm "
                                          "known-k-full\nnodes 8\nhomes 2 "
                                          "2\nchoices 0\ndigest 1\nend\n"),
               std::invalid_argument);
  // Unknown key.
  EXPECT_THROW((void)ScheduleTrace::parse("udring-trace v1\nbogus 1\nend\n"),
               std::invalid_argument);
  // Corrupt token inside a list must be a parse error, not a silent
  // truncation (a truncated choice list would replay a different schedule).
  EXPECT_THROW((void)ScheduleTrace::parse(
                   "udring-trace v1\nalgorithm known-k-full\nnodes 8\nhomes 0 "
                   "2\nchoices 3 4 oops 5\ndigest 1\nend\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ScheduleTrace::parse(
                   "udring-trace v1\nalgorithm known-k-full\nnodes 8\nhomes 0 "
                   "x\nchoices 0\ndigest 1\nend\n"),
               std::invalid_argument);
  // Trailing garbage after a scalar value.
  EXPECT_THROW((void)ScheduleTrace::parse(
                   "udring-trace v1\nalgorithm known-k-full\nnodes 8 "
                   "9\nhomes 0 2\nchoices 0\ndigest 1\nend\n"),
               std::invalid_argument);
  // Duplicate keys (e.g. a second choices line) must not concatenate.
  EXPECT_THROW((void)ScheduleTrace::parse(
                   "udring-trace v1\nalgorithm known-k-full\nnodes 8\nhomes 0 "
                   "2\nchoices 1 2\nchoices 3\ndigest 1\nend\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace udring::explore
