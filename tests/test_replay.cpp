// Record/replay determinism (the explorer's foundation) and the
// tests/schedules/ regression corpus.
//
//  - For every scheduler kind — the five sim/ families and the three
//    adversaries — recording an execution and replaying its choice sequence
//    must reproduce an identical event-log digest (the PR's round-trip
//    acceptance criterion).
//  - Every trace in tests/schedules/ must replay to its recorded digest and
//    outcome. The corpus pins real executions (including an adversarial
//    fifo-stress schedule) against behavioural drift in the simulator,
//    the schedulers, or the algorithms: any change to the action semantics
//    shows up here as a digest mismatch before it shows up anywhere subtler.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/runner.h"
#include "exp/campaign.h"
#include "explore/fuzz.h"
#include "explore/replay.h"
#include "explore/trace.h"
#include "util/rng.h"

namespace udring::explore {
namespace {

std::vector<std::size_t> draw_instance_homes(std::size_t n, std::size_t k,
                                             std::uint64_t seed) {
  Rng rng(seed);
  return exp::draw_homes(exp::ConfigFamily::RandomAny, n, k, 1, rng);
}

// ---- round-trip determinism for every scheduler kind ------------------------

class RoundTrip : public ::testing::TestWithParam<ExploreSchedulerKind> {};

TEST_P(RoundTrip, RecordThenReplayReproducesDigest) {
  for (const core::Algorithm algorithm :
       {core::Algorithm::KnownKFull, core::Algorithm::KnownKLogMem,
        core::Algorithm::UnknownRelaxed}) {
    const auto homes = draw_instance_homes(18, 5, 11);
    const ScheduleTrace trace =
        record_trace(algorithm, 18, homes, GetParam(), /*seed=*/42);
    EXPECT_EQ(trace.note, "ok") << core::to_string(algorithm) << " under "
                                << to_string(GetParam()) << ": " << trace.note;
    EXPECT_FALSE(trace.choices.empty());

    const ReplayOutcome replayed = replay_trace(trace);
    EXPECT_FALSE(replayed.failed) << replayed.reason;
    EXPECT_EQ(replayed.digest, trace.expected_digest)
        << core::to_string(algorithm) << " under " << to_string(GetParam());
    EXPECT_EQ(replayed.actions, trace.choices.size());
  }
}

TEST_P(RoundTrip, RecordingIsDeterministicPerSeed) {
  const auto homes = draw_instance_homes(16, 4, 3);
  const ScheduleTrace a =
      record_trace(core::Algorithm::KnownKFull, 16, homes, GetParam(), 7);
  const ScheduleTrace b =
      record_trace(core::Algorithm::KnownKFull, 16, homes, GetParam(), 7);
  EXPECT_EQ(a.choices, b.choices);
  EXPECT_EQ(a.expected_digest, b.expected_digest);
}

TEST_P(RoundTrip, TraceSurvivesTextSerialization) {
  const auto homes = draw_instance_homes(14, 4, 5);
  const ScheduleTrace trace =
      record_trace(core::Algorithm::KnownKFull, 14, homes, GetParam(), 9);
  const ScheduleTrace reparsed = ScheduleTrace::parse(trace.to_text());
  EXPECT_EQ(reparsed.algorithm, trace.algorithm);
  EXPECT_EQ(reparsed.node_count, trace.node_count);
  EXPECT_EQ(reparsed.homes, trace.homes);
  EXPECT_EQ(reparsed.choices, trace.choices);
  EXPECT_EQ(reparsed.expected_digest, trace.expected_digest);
  EXPECT_EQ(reparsed.generator, trace.generator);
  EXPECT_EQ(reparsed.fault_non_fifo, trace.fault_non_fifo);

  const ReplayOutcome replayed = replay_trace(reparsed);
  EXPECT_EQ(replayed.digest, trace.expected_digest);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, RoundTrip,
                         ::testing::ValuesIn(all_explore_scheduler_kinds()),
                         [](const auto& info) {
                           std::string name(to_string(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// ---- regression corpus ------------------------------------------------------

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(UDRING_SCHEDULES_DIR)) {
    if (entry.path().extension() == ".trace") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ScheduleCorpus, HasAtLeastFiveTracesIncludingFifoStress) {
  const auto files = corpus_files();
  EXPECT_GE(files.size(), 5u);
  bool fifo_stress = false;
  for (const auto& file : files) {
    std::ifstream in(file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const ScheduleTrace trace = ScheduleTrace::parse(buffer.str());
    fifo_stress = fifo_stress || trace.generator == "fifo-stress";
  }
  EXPECT_TRUE(fifo_stress)
      << "corpus must include an adversarial fifo-stress trace";
}

TEST(ScheduleCorpus, EveryTraceReplaysToItsRecordedDigest) {
  for (const auto& file : corpus_files()) {
    std::ifstream in(file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    SCOPED_TRACE(file.filename().string());
    const ScheduleTrace trace = ScheduleTrace::parse(buffer.str());
    const ReplayOutcome outcome = replay_trace(trace);
    EXPECT_EQ(outcome.digest, trace.expected_digest)
        << "replay diverged from the recorded execution";
    EXPECT_EQ(outcome.failed, trace.note != "ok")
        << "outcome drifted: " << outcome.reason;
  }
}

// ---- replay mechanics -------------------------------------------------------

TEST(ReplayScheduler, PadsExhaustedTraceWithFallback) {
  ReplayScheduler scheduler({2, 1});
  scheduler.reset(3);
  const std::vector<sim::AgentId> enabled = {5, 1, 9};
  EXPECT_EQ(scheduler.pick(enabled), 9u);  // sorted {1,5,9}[2]
  EXPECT_EQ(scheduler.pick(enabled), 5u);  // sorted {1,5,9}[1]
  EXPECT_EQ(scheduler.pick(enabled), 1u);  // exhausted -> index 0
  EXPECT_EQ(scheduler.consumed(), 3u);
}

TEST(ReplayScheduler, ReducesChoicesModuloEnabledCount) {
  ReplayScheduler scheduler({7});
  scheduler.reset(2);
  EXPECT_EQ(scheduler.pick({4, 2}), 4u);  // sorted {2,4}[7 % 2 = 1]
}

TEST(TraceFormat, RejectsMalformedInput) {
  EXPECT_THROW((void)ScheduleTrace::parse(""), std::invalid_argument);
  EXPECT_THROW((void)ScheduleTrace::parse("not-a-trace v1\nend\n"),
               std::invalid_argument);
  // Missing digest line.
  EXPECT_THROW((void)ScheduleTrace::parse("udring-trace v1\nalgorithm "
                                          "known-k-full\nnodes 8\nhomes 0 "
                                          "2\nchoices 0\nend\n"),
               std::invalid_argument);
  // Duplicate home.
  EXPECT_THROW((void)ScheduleTrace::parse("udring-trace v1\nalgorithm "
                                          "known-k-full\nnodes 8\nhomes 2 "
                                          "2\nchoices 0\ndigest 1\nend\n"),
               std::invalid_argument);
  // Unknown key.
  EXPECT_THROW((void)ScheduleTrace::parse("udring-trace v1\nbogus 1\nend\n"),
               std::invalid_argument);
  // Corrupt token inside a list must be a parse error, not a silent
  // truncation (a truncated choice list would replay a different schedule).
  EXPECT_THROW((void)ScheduleTrace::parse(
                   "udring-trace v1\nalgorithm known-k-full\nnodes 8\nhomes 0 "
                   "2\nchoices 3 4 oops 5\ndigest 1\nend\n"),
               std::invalid_argument);
  EXPECT_THROW((void)ScheduleTrace::parse(
                   "udring-trace v1\nalgorithm known-k-full\nnodes 8\nhomes 0 "
                   "x\nchoices 0\ndigest 1\nend\n"),
               std::invalid_argument);
  // Trailing garbage after a scalar value.
  EXPECT_THROW((void)ScheduleTrace::parse(
                   "udring-trace v1\nalgorithm known-k-full\nnodes 8 "
                   "9\nhomes 0 2\nchoices 0\ndigest 1\nend\n"),
               std::invalid_argument);
  // Duplicate keys (e.g. a second choices line) must not concatenate.
  EXPECT_THROW((void)ScheduleTrace::parse(
                   "udring-trace v1\nalgorithm known-k-full\nnodes 8\nhomes 0 "
                   "2\nchoices 1 2\nchoices 3\ndigest 1\nend\n"),
               std::invalid_argument);
}

}  // namespace
}  // namespace udring::explore
