// Unit + property tests for core/distance_sequence.h — the combinatorics all
// three algorithms stand on: rotations, minimal rotations (naive vs Booth),
// periodicity / symmetry degree (Fig 1), the 4-fold repetition test of the
// estimator, and the Lemma 2 primitive.

#include "core/distance_sequence.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "util/rng.h"

namespace udring::core {
namespace {

TEST(Shift, MatchesPaperDefinition) {
  const DistanceSeq d = {1, 4, 2, 1, 2, 2};
  EXPECT_EQ(shift(d, 0), d);
  EXPECT_EQ(shift(d, 1), (DistanceSeq{4, 2, 1, 2, 2, 1}));
  EXPECT_EQ(shift(d, 5), (DistanceSeq{2, 1, 4, 2, 1, 2}));
  EXPECT_EQ(shift(d, 6), d) << "shift by |D| is the identity";
  EXPECT_EQ(shift(d, 7), shift(d, 1)) << "shift is modulo |D|";
}

TEST(Shift, EmptyAndSingleton) {
  EXPECT_TRUE(shift({}, 3).empty());
  EXPECT_EQ(shift({5}, 2), (DistanceSeq{5}));
}

TEST(Sum, Sums) {
  EXPECT_EQ(sum({}), 0u);
  EXPECT_EQ(sum({1, 4, 2, 1, 2, 2}), 12u);
}

TEST(CompareRotations, OrdersLexicographically) {
  const DistanceSeq d = {2, 1, 3};
  // rotations: x=0: (2,1,3), x=1: (1,3,2), x=2: (3,2,1)
  EXPECT_LT(compare_rotations(d, 1, 0), 0);
  EXPECT_GT(compare_rotations(d, 2, 0), 0);
  EXPECT_EQ(compare_rotations(d, 1, 1), 0);
}

TEST(MinRotation, Fig1aExample) {
  // Fig 1(a): D = (1,4,2,1,2,2). Rotations starting with 1: x=0 → (1,4,...),
  // x=3 → (1,2,2,1,4,2). The minimal is x=3.
  const DistanceSeq d = {1, 4, 2, 1, 2, 2};
  EXPECT_EQ(min_rotation_naive(d), 3u);
  EXPECT_EQ(min_rotation_booth(d), 3u);
}

TEST(MinRotation, TieBreaksToSmallestIndex) {
  const DistanceSeq d = {1, 2, 1, 2};  // minimal rotation (1,2,1,2) at x=0 and 2
  EXPECT_EQ(min_rotation_naive(d), 0u);
  EXPECT_EQ(min_rotation_booth(d), 0u);
}

TEST(MinRotation, ConstantSequence) {
  const DistanceSeq d = {3, 3, 3, 3};
  EXPECT_EQ(min_rotation_naive(d), 0u);
  EXPECT_EQ(min_rotation_booth(d), 0u);
}

TEST(MinRotation, SingletonAndEmpty) {
  EXPECT_EQ(min_rotation_booth({}), 0u);
  EXPECT_EQ(min_rotation_booth({7}), 0u);
}

// Property sweep: Booth's O(k) algorithm must agree with the O(k²) reference
// on random sequences, including many with repeated values (small alphabet
// forces periodic structure and ties).
class MinRotationProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MinRotationProperty, BoothMatchesNaive) {
  const auto [length, alphabet] = GetParam();
  udring::Rng rng(static_cast<std::uint64_t>(length * 1009 + alphabet));
  for (int trial = 0; trial < 200; ++trial) {
    DistanceSeq d(static_cast<std::size_t>(length));
    for (auto& v : d) {
      v = 1 + static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(alphabet)));
    }
    const std::size_t naive = min_rotation_naive(d);
    const std::size_t booth = min_rotation_booth(d);
    ASSERT_EQ(booth, naive) << "length=" << length << " alphabet=" << alphabet
                            << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MinRotationProperty,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8, 13, 21,
                                                              64),
                                            ::testing::Values(2, 3, 10)));

TEST(Period, AperiodicSequenceHasFullPeriod) {
  EXPECT_EQ(period({1, 4, 2, 1, 2, 2}), 6u);
  EXPECT_FALSE(is_periodic({1, 4, 2, 1, 2, 2}));
}

TEST(Period, Fig1bIsTwoFold) {
  const DistanceSeq d = {1, 2, 3, 1, 2, 3};
  EXPECT_EQ(period(d), 3u);
  EXPECT_TRUE(is_periodic(d));
  EXPECT_EQ(symmetry_degree(d), 2u);
  EXPECT_EQ(aperiodic_factor(d), (DistanceSeq{1, 2, 3}));
}

TEST(Period, ConstantSequence) {
  EXPECT_EQ(period({2, 2, 2, 2}), 1u);
  EXPECT_EQ(symmetry_degree({2, 2, 2, 2}), 4u);
}

TEST(Period, PeriodMustDivideLength) {
  // (1,2,1,2,1): the prefix (1,2) repeats but 2 ∤ 5 — not periodic in the
  // rotational sense the paper uses.
  EXPECT_EQ(period({1, 2, 1, 2, 1}), 5u);
  EXPECT_EQ(symmetry_degree({1, 2, 1, 2, 1}), 1u);
}

TEST(Period, RotationInvariant) {
  // Symmetry degree is a property of the configuration, not the start agent.
  const DistanceSeq d = {1, 2, 3, 1, 2, 3};
  for (std::size_t x = 0; x < d.size(); ++x) {
    EXPECT_EQ(symmetry_degree(shift(d, x)), 2u) << "x=" << x;
  }
}

TEST(Repetition, FourFoldDetectsFig8) {
  // Fig 8: agent observes (1,3,1,3,1,3,1,3) = (1,3)^4 and estimates n' = 4.
  const DistanceSeq d = {1, 3, 1, 3, 1, 3, 1, 3};
  EXPECT_TRUE(is_m_fold_repetition(d, 4));
  EXPECT_TRUE(is_m_fold_repetition(d, 2));
  EXPECT_FALSE(is_m_fold_repetition(d, 3)) << "8 is not divisible by 3";
}

TEST(Repetition, RejectsNearMisses) {
  EXPECT_FALSE(is_m_fold_repetition({1, 3, 1, 3, 1, 3, 1, 4}, 4));
  EXPECT_FALSE(is_m_fold_repetition({}, 4));
  EXPECT_FALSE(is_m_fold_repetition({1, 1, 1}, 0));
}

TEST(Repetition, AllEqualIsFourFoldAtLengthFour) {
  EXPECT_TRUE(is_m_fold_repetition({6, 6, 6, 6}, 4));
}

TEST(Lemma2, StatementHoldsOnRandomInstances) {
  // Lemma 2 [16]: if |B| < |A| and B³ is a prefix of A³, then |B| ≤ |A|/2 or
  // B is periodic. Verify over random sequences where the hypothesis holds.
  udring::Rng rng(2024);
  int hypothesis_hits = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    const std::size_t p = 2 + static_cast<std::size_t>(rng.below(6));   // |A|
    const std::size_t q = 1 + static_cast<std::size_t>(rng.below(p - 1));  // |B| < |A|
    DistanceSeq a(p);
    for (auto& v : a) v = 1 + static_cast<std::size_t>(rng.below(2));
    // Take B as the prefix of A of length q, the interesting case.
    const DistanceSeq b(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(q));
    if (!cube_is_prefix_of_cube(b, a)) continue;
    ++hypothesis_hits;
    EXPECT_TRUE(2 * q <= p || period(b) < q)
        << "Lemma 2 violated: |A|=" << p << " |B|=" << q;
  }
  EXPECT_GT(hypothesis_hits, 100) << "the sweep should exercise the hypothesis";
}

TEST(CubePrefix, Basics) {
  EXPECT_TRUE(cube_is_prefix_of_cube({1}, {1, 1}));
  EXPECT_TRUE(cube_is_prefix_of_cube({1, 2}, {1, 2, 1, 2}));
  EXPECT_FALSE(cube_is_prefix_of_cube({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(cube_is_prefix_of_cube({}, {}));
}

TEST(Positions, DistancesFromPositions) {
  // Homes {0,1,5,7} on a 12-ring: distances (1,4,2,5).
  EXPECT_EQ(distances_from_positions({0, 1, 5, 7}, 12), (DistanceSeq{1, 4, 2, 5}));
  // Order must not matter.
  EXPECT_EQ(distances_from_positions({7, 0, 5, 1}, 12), (DistanceSeq{1, 4, 2, 5}));
}

TEST(Positions, SingleAgentWholeRing) {
  EXPECT_EQ(distances_from_positions({4}, 9), (DistanceSeq{9}));
}

TEST(Positions, RejectsBadInput) {
  EXPECT_THROW(distances_from_positions({}, 5), std::invalid_argument);
  EXPECT_THROW(distances_from_positions({1, 1}, 5), std::invalid_argument);
  EXPECT_THROW(distances_from_positions({5}, 5), std::invalid_argument);
}

TEST(Positions, ConfigSequenceIsRotationMinimal) {
  const auto d = config_distance_sequence({0, 1, 5, 7}, 12);
  // All rotations of (1,4,2,5): minimal is (1,4,2,5) itself? rotations:
  // (1,4,2,5), (4,2,5,1), (2,5,1,4), (5,1,4,2) → minimal (1,4,2,5).
  EXPECT_EQ(d, (DistanceSeq{1, 4, 2, 5}));
  for (std::size_t x = 0; x < d.size(); ++x) {
    EXPECT_LE(compare_rotations(d, 0, x), 0);
  }
}

TEST(Positions, SymmetryDegreeOfFigures) {
  // Fig 1(a): l = 1; Fig 1(b): l = 2.
  EXPECT_EQ(config_symmetry_degree({0, 1, 5, 7, 8, 10}, 12), 1u);
  EXPECT_EQ(config_symmetry_degree({0, 1, 3, 6, 7, 9}, 12), 2u);
}

TEST(Positions, UniformConfigurationHasDegreeK) {
  EXPECT_EQ(config_symmetry_degree({0, 3, 6, 9}, 12), 4u);
}

TEST(HashSequence, DistinguishesAndReproduces) {
  const DistanceSeq a = {1, 2, 3};
  const DistanceSeq b = {1, 2, 4};
  EXPECT_EQ(hash_sequence(0, a), hash_sequence(0, a));
  EXPECT_NE(hash_sequence(0, a), hash_sequence(0, b));
  EXPECT_NE(hash_sequence(0, a), hash_sequence(1, a));
  EXPECT_NE(hash_sequence(0, {1, 2}), hash_sequence(0, {1, 2, 0}))
      << "length is mixed in";
}

}  // namespace
}  // namespace udring::core
