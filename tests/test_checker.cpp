// Tests for sim/checker.h — the independent oracle itself must be right, or
// every other test is worthless. Validates the gap arithmetic and the
// Definition 1/2 predicates against hand-computed cases and live simulators.

#include "sim/checker.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/scheduler.h"
#include "support/test_agents.h"

namespace udring::sim {
namespace {

using test::CollectorAgent;
using test::SitterAgent;
using test::SuspenderAgent;
using test::WalkerAgent;

TEST(RingGaps, HandComputedCases) {
  EXPECT_EQ(ring_gaps({0, 4, 8, 12}, 16), (std::vector<std::size_t>{4, 4, 4, 4}));
  EXPECT_EQ(ring_gaps({3}, 9), (std::vector<std::size_t>{9}));
  EXPECT_EQ(ring_gaps({5, 1}, 8), (std::vector<std::size_t>{4, 4}));
  EXPECT_EQ(ring_gaps({0, 1, 7}, 10), (std::vector<std::size_t>{1, 6, 3}));
}

TEST(RingGaps, GapsAlwaysSumToN) {
  for (std::size_t n = 3; n <= 20; ++n) {
    std::vector<std::size_t> positions = {0, n / 3, n - 1};
    std::size_t total = 0;
    for (const std::size_t gap : ring_gaps(positions, n)) total += gap;
    EXPECT_EQ(total, n);
  }
}

TEST(PositionsUniform, AcceptsExactDeployments) {
  EXPECT_TRUE(check_positions_uniform({0, 4, 8, 12}, 16).ok);
  EXPECT_TRUE(check_positions_uniform({2, 6, 10, 14}, 16).ok) << "any rotation";
  EXPECT_TRUE(check_positions_uniform({7}, 11).ok) << "k = 1 is trivially uniform";
  EXPECT_TRUE(check_positions_uniform({0, 1, 2}, 3).ok) << "k = n";
}

TEST(PositionsUniform, AcceptsFloorCeilMixExactly) {
  // n = 14, k = 4: gaps must be two 4s and two 3s.
  EXPECT_TRUE(check_positions_uniform({0, 4, 8, 11}, 14).ok);
  EXPECT_FALSE(check_positions_uniform({0, 4, 9, 12}, 14).ok)
      << "a gap of 5 violates ⌈n/k⌉ = 4";
  // Right gap values but wrong multiplicity: three 4s and one 2.
  EXPECT_FALSE(check_positions_uniform({0, 4, 8, 12}, 14).ok);
}

TEST(PositionsUniform, RejectsDuplicatesAndEmpties) {
  EXPECT_FALSE(check_positions_uniform({3, 3}, 8).ok);
  EXPECT_FALSE(check_positions_uniform({}, 8).ok);
}

TEST(PositionsUniform, FailureMessagesAreActionable) {
  const auto bad_gap = check_positions_uniform({0, 1, 8}, 12);
  EXPECT_FALSE(bad_gap.ok);
  EXPECT_NE(bad_gap.reason.find("gap"), std::string::npos);
  const auto duplicate = check_positions_uniform({5, 5, 9}, 12);
  EXPECT_FALSE(duplicate.ok);
  EXPECT_NE(duplicate.reason.find("share"), std::string::npos);
}

TEST(DefinitionOne, RequiresHaltAndEmptyQueuesAndUniformity) {
  // Walkers that halt uniformly: 2 agents on an 8-ring moving to distance 4.
  Simulator sim(8, {0, 4}, [](AgentId) { return std::make_unique<WalkerAgent>(8); });
  RoundRobinScheduler scheduler;
  (void)sim.run(scheduler);
  EXPECT_TRUE(UniformDeploymentOracle(true).check_goal(sim).ok);
}

TEST(DefinitionOne, RejectsWaitingAgents) {
  Simulator sim(8, {0, 4}, [](AgentId id) -> std::unique_ptr<AgentProgram> {
    if (id == 0) return std::make_unique<WalkerAgent>(0);
    return std::make_unique<CollectorAgent>(1);  // waits forever
  });
  RoundRobinScheduler scheduler;
  (void)sim.run(scheduler);
  const auto check = UniformDeploymentOracle(true).check_goal(sim);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.reason.find("waiting"), std::string::npos);
}

TEST(DefinitionOne, RejectsNonUniformHalts) {
  Simulator sim(8, {0, 1}, [](AgentId) { return std::make_unique<WalkerAgent>(0); });
  RoundRobinScheduler scheduler;
  (void)sim.run(scheduler);
  EXPECT_FALSE(UniformDeploymentOracle(true).check_goal(sim).ok)
      << "gaps 1 and 7 are not a uniform deployment";
}

TEST(DefinitionTwo, RequiresSuspendedAndUniform) {
  Simulator sim(8, {0, 4}, [](AgentId) { return std::make_unique<SuspenderAgent>(); });
  RoundRobinScheduler scheduler;
  (void)sim.run(scheduler);
  EXPECT_TRUE(UniformDeploymentOracle(false).check_goal(sim).ok);
}

TEST(DefinitionTwo, RejectsHaltedAgents) {
  Simulator sim(8, {0, 4}, [](AgentId id) -> std::unique_ptr<AgentProgram> {
    if (id == 0) return std::make_unique<SuspenderAgent>();
    return std::make_unique<SitterAgent>(0);  // halts
  });
  RoundRobinScheduler scheduler;
  (void)sim.run(scheduler);
  EXPECT_FALSE(UniformDeploymentOracle(false).check_goal(sim).ok);
}

TEST(Gathered, DetectsGatheringAndSpread) {
  Simulator gathered(6, {0, 3}, [](AgentId id) -> std::unique_ptr<AgentProgram> {
    // Both halt at node 3.
    return std::make_unique<WalkerAgent>(id == 0 ? 3 : 0);
  });
  RoundRobinScheduler scheduler;
  (void)gathered.run(scheduler);
  EXPECT_TRUE(check_gathered(gathered).ok);

  Simulator spread(6, {0, 3}, [](AgentId) { return std::make_unique<WalkerAgent>(0); });
  RoundRobinScheduler scheduler2;
  (void)spread.run(scheduler2);
  EXPECT_FALSE(check_gathered(spread).ok);
}

TEST(PositionsUniform, ExhaustiveSmallInstances) {
  // For every n ≤ 12, k ≤ n and every rotation r: the analytic target set
  // (first n%k gaps ⌈n/k⌉, rest ⌊n/k⌋, shifted by r) must pass, and any
  // single-agent displacement by one node must fail unless it lands back on
  // an equivalent uniform set.
  for (std::size_t n = 2; n <= 12; ++n) {
    for (std::size_t k = 2; k <= n; ++k) {
      // Build the canonical uniform positions.
      std::vector<std::size_t> canonical;
      std::size_t position = 0;
      for (std::size_t j = 0; j < k; ++j) {
        canonical.push_back(position);
        position += n / k + (j < n % k ? 1 : 0);
      }
      for (std::size_t r = 0; r < n; ++r) {
        std::vector<std::size_t> rotated;
        for (const std::size_t p : canonical) rotated.push_back((p + r) % n);
        ASSERT_TRUE(check_positions_uniform(rotated, n).ok)
            << "n=" << n << " k=" << k << " r=" << r;
      }
      // Perturb: move one agent forward by one node. If the slot is free,
      // verify the verdict against a brute-force gap check.
      if (k < n) {
        std::vector<std::size_t> perturbed = canonical;
        perturbed[0] = (perturbed[0] + 1) % n;
        std::sort(perturbed.begin(), perturbed.end());
        const bool distinct =
            std::adjacent_find(perturbed.begin(), perturbed.end()) ==
            perturbed.end();
        if (distinct) {
          // Brute force: gaps must all be in {⌊n/k⌋, ⌈n/k⌉} with the right
          // multiplicity.
          const auto gaps = ring_gaps(perturbed, n);
          std::size_t ceil_count = 0;
          bool ok = true;
          for (const std::size_t gap : gaps) {
            if (gap == n / k + 1 && n % k != 0) {
              ++ceil_count;
            } else if (gap != n / k) {
              ok = false;
            }
          }
          ok = ok && (n % k == 0 || ceil_count == n % k);
          EXPECT_EQ(check_positions_uniform(perturbed, n).ok, ok)
              << "n=" << n << " k=" << k;
        }
      }
    }
  }
}

TEST(ModelInvariants, DetectsNothingWrongOnHealthyRuns) {
  Simulator sim(9, {0, 3, 6},
                [](AgentId) { return std::make_unique<WalkerAgent>(10, true); });
  RoundRobinScheduler scheduler;
  scheduler.reset(3);
  while (sim.step(scheduler)) {
    ASSERT_TRUE(check_model_invariants(sim, 0).ok);
  }
  EXPECT_TRUE(check_model_invariants(sim, 3).ok);
  EXPECT_FALSE(check_model_invariants(sim, 4).ok)
      << "demanding more tokens than exist must fail";
}

}  // namespace
}  // namespace udring::sim
