// Unit tests for util/bits.h: the bit-accounting primitives behind the
// paper's memory measurements.

#include "util/bits.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace udring {
namespace {

TEST(Bits, BitWidthZeroCostsOneBit) {
  // A counter that only ever holds 0 still occupies storage.
  EXPECT_EQ(bit_width(0), 1u);
}

TEST(Bits, BitWidthPowersOfTwoBoundaries) {
  EXPECT_EQ(bit_width(1), 1u);
  EXPECT_EQ(bit_width(2), 2u);
  EXPECT_EQ(bit_width(3), 2u);
  EXPECT_EQ(bit_width(4), 3u);
  EXPECT_EQ(bit_width((1ULL << 32) - 1), 32u);
  EXPECT_EQ(bit_width(1ULL << 32), 33u);
  EXPECT_EQ(bit_width(std::numeric_limits<std::uint64_t>::max()), 64u);
}

TEST(Bits, CeilDivMatchesDefinition) {
  for (std::size_t a = 0; a <= 40; ++a) {
    for (std::size_t b = 1; b <= 9; ++b) {
      EXPECT_EQ(ceil_div(a, b), (a + b - 1) / b) << a << "/" << b;
      EXPECT_GE(ceil_div(a, b) * b, a);
      if (a > 0) {
        EXPECT_LT((ceil_div(a, b) - 1) * b, a);
      }
    }
  }
}

TEST(Bits, CeilLog2Boundaries) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1023), 10u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Bits, CeilLog2CoversSubPhaseBound) {
  // Algorithm 2 runs at most ⌈log k⌉ sub-phases; the bound must be
  // meaningful for every k ≥ 2.
  for (std::size_t k = 2; k <= 512; ++k) {
    const std::size_t bound = ceil_log2(k);
    EXPECT_GE(std::size_t{1} << bound, k);
  }
}

TEST(Bits, GcdAgainstBruteForce) {
  for (std::size_t a = 1; a <= 36; ++a) {
    for (std::size_t b = 1; b <= 36; ++b) {
      std::size_t expected = 1;
      for (std::size_t d = 1; d <= 36; ++d) {
        if (a % d == 0 && b % d == 0) expected = d;
      }
      EXPECT_EQ(gcd(a, b), expected) << a << "," << b;
    }
  }
  EXPECT_EQ(gcd(0, 5), 5u);
  EXPECT_EQ(gcd(5, 0), 5u);
}

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  for (std::size_t shift = 0; shift < 20; ++shift) {
    EXPECT_TRUE(is_pow2(std::size_t{1} << shift));
    if (shift >= 2) {
      EXPECT_FALSE(is_pow2((std::size_t{1} << shift) - 1));
    }
  }
}

TEST(Bits, CheckedCastPassesInRange) {
  EXPECT_EQ(checked_cast<std::uint8_t>(std::size_t{255}), 255u);
  EXPECT_EQ(checked_cast<std::int32_t>(std::int64_t{-5}), -5);
}

TEST(Bits, CheckedCastThrowsOnLoss) {
  EXPECT_THROW((void)checked_cast<std::uint8_t>(std::size_t{256}),
               std::overflow_error);
  EXPECT_THROW((void)checked_cast<std::uint32_t>(std::int64_t{-1}),
               std::overflow_error);
}

}  // namespace
}  // namespace udring
