#!/usr/bin/env python3
"""Diff a fresh google-benchmark JSON against a committed baseline.

Usage:
    scripts/bench_compare.py BASELINE.json FRESH.json [--tolerance 5.0]
                             [--informational]

For every benchmark present in the baseline, the fresh run must (a) contain
a benchmark of the same name and (b) not be slower than baseline_time x
tolerance. Name-set drift is reported in BOTH directions: benchmarks
missing from the fresh run ("removed") and benchmarks present only in the
fresh run ("added") are each an error — a one-sided comparison quietly
shrinks the artifact, and an added bench without a committed baseline is a
baseline update someone forgot. Under --informational both become warning
annotations (new benches land before their baseline does).

Exit codes: 0 = within tolerance, 1 = regression or added/removed benchmark,
2 = unreadable/malformed input or a debug-built input. With --informational,
regressions and name drift print GitHub warning annotations and the exit
code stays 0.

Debug timings are rejected outright, on BOTH sides of the comparison: a
baseline recorded from a debug build makes every future comparison
meaningless, and a debug fresh run can only produce false regressions. The
build type is read from the JSON context's "udring_build_type" key (written
by the bench harness itself, see bench/support/bench_common.h) and falls
back to google-benchmark's "library_build_type" for artifacts predating the
key. This check ignores --informational — it is an artifact-validity error,
not a timing excursion.

The default tolerance is deliberately generous: the committed baselines and
the CI runners are different machines, so this gate catches order-of-
magnitude regressions (an O(n) walk reappearing on a hot path), not
single-digit percentages. Tighten it only with same-machine baselines.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"bench_compare: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)
    context = data.get("context", {})
    build_type = context.get("udring_build_type",
                             context.get("library_build_type", "unknown"))
    if str(build_type).lower() == "debug":
        print(f"::error::bench_compare: {path} was recorded from a DEBUG "
              f"build (context reports '{build_type}'); debug timings are "
              f"not comparable — rebuild with CMAKE_BUILD_TYPE=Release and "
              f"regenerate the JSON", file=sys.stderr)
        sys.exit(2)
    benchmarks = {}
    for bench in data.get("benchmarks", []):
        # Aggregate reruns (mean/median rows) keep their suffixed names and
        # compare independently; plain rows compare directly.
        name = bench.get("name")
        time = bench.get("real_time")
        if name is None or time is None:
            continue
        benchmarks[name] = (float(time), bench.get("time_unit", "ns"))
    if not benchmarks:
        print(f"bench_compare: {path} contains no benchmarks", file=sys.stderr)
        sys.exit(2)
    return benchmarks


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=5.0,
                        help="fail when fresh > baseline x tolerance "
                             "(default: %(default)s)")
    parser.add_argument("--informational", action="store_true",
                        help="report regressions as warnings, exit 0")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)

    level = "warning" if args.informational else "error"
    problems = 0
    for name, (base_time, base_unit) in sorted(baseline.items()):
        if name not in fresh:
            print(f"::{level}::bench_compare: removed benchmark '{name}' — "
                  f"present in {args.baseline} but missing from {args.fresh} "
                  f"(a dropped bench silently shrinks the artifact)")
            problems += 1
            continue
        fresh_time, fresh_unit = fresh[name]
        if base_unit != fresh_unit:
            print(f"::{level}::bench_compare: '{name}' changed time unit "
                  f"({base_unit} -> {fresh_unit})")
            problems += 1
            continue
        ratio = fresh_time / base_time if base_time > 0 else float("inf")
        verdict = "ok" if ratio <= args.tolerance else "REGRESSION"
        print(f"  {verdict:>10}  {name}: {base_time:.3g} -> {fresh_time:.3g} "
              f"{base_unit} ({ratio:.2f}x, tolerance {args.tolerance:.1f}x)")
        if ratio > args.tolerance:
            print(f"::{level}::bench regression: {name} is {ratio:.2f}x the "
                  f"committed baseline (tolerance {args.tolerance:.1f}x)")
            problems += 1

    for name in sorted(set(fresh) - set(baseline)):
        print(f"::{level}::bench_compare: added benchmark '{name}' has no "
              f"committed baseline — commit a regenerated baseline JSON for "
              f"it")
        problems += 1

    if problems and not args.informational:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
