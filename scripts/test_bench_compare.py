#!/usr/bin/env python3
"""Self-test for scripts/bench_compare.py (stdlib unittest, run by CI).

Runs the comparator as a subprocess — the exit code IS its contract with CI,
so that is what the test pins: tolerance pass/fail, added/removed benchmark
names in both strict and --informational modes, and the debug-build guard.

    python3 scripts/test_bench_compare.py -v
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def artifact(names_to_ns, build_type="Release"):
    return {
        "context": {"udring_build_type": build_type},
        "benchmarks": [
            {"name": name, "real_time": time_ns, "time_unit": "ns"}
            for name, time_ns in names_to_ns.items()
        ],
    }


class BenchCompareTest(unittest.TestCase):
    def run_compare(self, baseline, fresh, *extra):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "baseline.json")
            fresh_path = os.path.join(tmp, "fresh.json")
            with open(base_path, "w") as f:
                json.dump(baseline, f)
            with open(fresh_path, "w") as f:
                json.dump(fresh, f)
            done = subprocess.run(
                [sys.executable, SCRIPT, base_path, fresh_path, *extra],
                capture_output=True, text=True)
        return done.returncode, done.stdout + done.stderr

    def test_identical_artifacts_pass(self):
        data = artifact({"a/n=16": 100.0, "b/n=32": 200.0})
        code, _ = self.run_compare(data, data)
        self.assertEqual(code, 0)

    def test_regression_beyond_tolerance_fails(self):
        code, out = self.run_compare(artifact({"a": 100.0}),
                                     artifact({"a": 1000.0}),
                                     "--tolerance", "5.0")
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_slowdown_within_tolerance_passes(self):
        code, _ = self.run_compare(artifact({"a": 100.0}),
                                   artifact({"a": 300.0}),
                                   "--tolerance", "5.0")
        self.assertEqual(code, 0)

    def test_removed_benchmark_is_an_error(self):
        code, out = self.run_compare(artifact({"a": 100.0, "gone": 50.0}),
                                     artifact({"a": 100.0}))
        self.assertEqual(code, 1)
        self.assertIn("removed benchmark 'gone'", out)
        self.assertIn("::error::", out)

    def test_added_benchmark_is_an_error(self):
        code, out = self.run_compare(artifact({"a": 100.0}),
                                     artifact({"a": 100.0, "new": 50.0}))
        self.assertEqual(code, 1)
        self.assertIn("added benchmark 'new'", out)
        self.assertIn("::error::", out)

    def test_informational_downgrades_name_drift_to_warnings(self):
        code, out = self.run_compare(artifact({"a": 100.0, "gone": 50.0}),
                                     artifact({"a": 100.0, "new": 50.0}),
                                     "--informational")
        self.assertEqual(code, 0)
        self.assertIn("removed benchmark 'gone'", out)
        self.assertIn("added benchmark 'new'", out)
        self.assertIn("::warning::", out)
        self.assertNotIn("::error::", out)

    def test_informational_downgrades_regressions(self):
        code, out = self.run_compare(artifact({"a": 100.0}),
                                     artifact({"a": 1000.0}),
                                     "--informational")
        self.assertEqual(code, 0)
        self.assertIn("::warning::", out)

    def test_debug_build_rejected_even_informational(self):
        code, out = self.run_compare(
            artifact({"a": 100.0}, build_type="Debug"),
            artifact({"a": 100.0}), "--informational")
        self.assertEqual(code, 2)
        self.assertIn("DEBUG", out)

    def test_changed_time_unit_is_an_error(self):
        base = artifact({"a": 100.0})
        fresh = artifact({"a": 100.0})
        fresh["benchmarks"][0]["time_unit"] = "ms"
        code, out = self.run_compare(base, fresh)
        self.assertEqual(code, 1)
        self.assertIn("time unit", out)


if __name__ == "__main__":
    unittest.main()
