#!/usr/bin/env bash
# Reports clang-format drift across the tree (non-blocking in CI).
#
#   scripts/format-check.sh          list files that would be reformatted
#   scripts/format-check.sh --fix    reformat them in place

set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format-check: $CLANG_FORMAT not found; skipping" >&2
  exit 0
fi

mapfile -t files < <(find src tests bench examples \
  \( -name '*.cpp' -o -name '*.h' \) -type f | sort)

if [[ "${1:-}" == "--fix" ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "format-check: reformatted ${#files[@]} files"
  exit 0
fi

drifted=0
for file in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$file" >/dev/null 2>&1; then
    echo "needs formatting: $file"
    drifted=$((drifted + 1))
  fi
done

if [[ $drifted -gt 0 ]]; then
  echo "format-check: $drifted of ${#files[@]} files drift from .clang-format"
  exit 1
fi
echo "format-check: ${#files[@]} files clean"
